package obs

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"memnet/internal/sim"
)

// TestNilLayer: the disabled layer (nil registry / nil instruments)
// must be callable everywhere without effect.
func TestNilLayer(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	h := r.Histogram("y")
	r.Gauge("g", func() int64 { return 1 })
	r.Vec("v", nil, func() []uint64 { return nil })
	c.Inc()
	c.Add(5)
	h.Observe(123)
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments accumulated values")
	}
	if d := r.Dump(); d != nil {
		t.Fatal("nil registry dumped metrics")
	}
	var s *Sampler
	if s.Samples() != 0 || s.GaugeSeries("g") != nil || s.WriteCSV(nil) != nil {
		t.Fatal("nil sampler not inert")
	}
	var cfg *Config
	if cfg.On() {
		t.Fatal("nil config enabled")
	}
	if cfg.Interval() != DefaultSampleInterval {
		t.Fatal("nil config interval")
	}
}

// TestRegistryDuplicatePanics: metric names are interned once.
func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("m")
}

// TestHistogramBuckets: every value maps to a bucket whose bounds
// contain it, across the full range.
func TestHistogramBuckets(t *testing.T) {
	vals := []sim.Time{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 100, 1000, 4095, 4096,
		1 << 20, 1<<40 + 12345, 1 << 47}
	for _, v := range vals {
		b := bucketOf(v)
		if b < 0 || b >= NumHistBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, b)
		}
		up := bucketUpper(b)
		if v > up {
			t.Errorf("value %d above its bucket %d upper bound %d", v, b, up)
		}
		if b > 0 {
			if lo := bucketUpper(b - 1); v <= lo {
				t.Errorf("value %d not above previous bucket upper %d (bucket %d)", v, lo, b)
			}
		}
	}
	// Monotone non-decreasing upper bounds.
	for i := 1; i < NumHistBuckets; i++ {
		if bucketUpper(i) < bucketUpper(i-1) {
			t.Fatalf("bucketUpper not monotone at %d", i)
		}
	}
}

// TestHistogramQuantile: nearest-rank quantiles of a known distribution
// land within one quarter-octave of the exact value, and min/max/mean
// are exact.
func TestHistogramQuantile(t *testing.T) {
	h := (&Registry{}).histForTest("h")
	rng := rand.New(rand.NewSource(42))
	var raw []sim.Time
	for i := 0; i < 10000; i++ {
		v := sim.Time(rng.Intn(1_000_000) + 1)
		raw = append(raw, v)
		h.Observe(v)
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
	if h.Count() != 10000 || h.Min() != raw[0] || h.Max() != raw[len(raw)-1] {
		t.Fatalf("count/min/max wrong: %d %d %d", h.Count(), h.Min(), h.Max())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		rank := int(q*float64(len(raw))) - 1
		exact := raw[rank]
		got := h.Quantile(q)
		if got < exact || float64(got) > float64(exact)*1.19+1 {
			t.Errorf("Quantile(%.2f) = %d, exact %d (want within +19%%)", q, got, exact)
		}
	}
	// Degenerate single-value distribution: quantiles are exact.
	h2 := (&Registry{}).histForTest("h2")
	for i := 0; i < 5; i++ {
		h2.Observe(777)
	}
	if h2.Quantile(0.5) != 777 || h2.Quantile(1) != 777 {
		t.Fatalf("single-value quantiles: p50=%d p100=%d", h2.Quantile(0.5), h2.Quantile(1))
	}
}

// histForTest registers a histogram without the dup-check map so tests
// can construct them from a zero registry.
func (r *Registry) histForTest(name string) *Histogram {
	h := &Histogram{name: name}
	r.hists = append(r.hists, h)
	return h
}

// TestJain: known fairness values.
func TestJain(t *testing.T) {
	cases := []struct {
		xs   []uint64
		want float64
	}{
		{nil, 1},
		{[]uint64{0, 0, 0}, 1},
		{[]uint64{5, 5, 5, 5}, 1},
		{[]uint64{1, 0, 0, 0}, 0.25},
	}
	for _, c := range cases {
		if got := Jain(c.xs); got != c.want {
			t.Errorf("Jain(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

// TestSampler: the engine probe drives rows at exact boundaries; CSV
// and series expose them; fairness differencing works on cumulative
// vectors.
func TestSampler(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRegistry()
	var ticks int64
	svc := []uint64{0, 0}
	r.Gauge("ticks", func() int64 { return ticks })
	r.Vec("svc", []string{"a", "b"}, func() []uint64 { return svc })
	s := r.StartSampler(eng, 10)

	eng.At(5, func() { ticks = 1; svc[0] = 2 })
	eng.At(15, func() { ticks = 2; svc[0] = 3; svc[1] = 1 })
	eng.At(25, func() { ticks = 3 })
	eng.Run()

	if s.Samples() != 2 {
		t.Fatalf("samples = %d, want 2 (boundaries 10, 20)", s.Samples())
	}
	got := s.GaugeSeries("ticks")
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("gauge series %v, want [1 2]", got)
	}
	rows := s.VecRows("svc")
	if rows[0][0] != 2 || rows[1][1] != 1 {
		t.Fatalf("vec rows %v", rows)
	}
	fair := s.FairnessSeries("svc")
	if fair[0] != Jain([]uint64{2, 0}) {
		t.Fatalf("fairness[0] = %v", fair[0])
	}
	// Second interval delta: a: 3-2=1, b: 1-0=1 → perfectly fair.
	if fair[1] != 1 {
		t.Fatalf("fairness[1] = %v, want 1", fair[1])
	}

	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want header + 2 rows:\n%s", len(lines), b.String())
	}
	if lines[0] != "time_ps,ticks,svc[a],svc[b],jain(svc)" {
		t.Fatalf("CSV header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "10,1,2,0,") {
		t.Fatalf("CSV row 1 %q", lines[1])
	}
}

// TestDumpSorted: Dump orders metrics by name regardless of
// registration order.
func TestDumpSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Add(1)
	r.Counter("alpha").Add(2)
	d := r.Dump()
	if d.Counters[0].Name != "alpha" || d.Counters[1].Name != "zeta" {
		t.Fatalf("counters not sorted: %+v", d.Counters)
	}
}

// TestSchemaValidator: the minimal validator accepts conforming
// documents and pins down each violation class it supports.
func TestSchemaValidator(t *testing.T) {
	schema := []byte(`{
		"type": "object",
		"required": ["name"],
		"additionalProperties": false,
		"properties": {
			"name": {"type": "string"},
			"n": {"type": "integer"},
			"tags": {"type": "array", "items": {"type": "string"}}
		}
	}`)
	ok := [][]byte{
		[]byte(`{"name":"x"}`),
		[]byte(`{"name":"x","n":3,"tags":["a","b"]}`),
	}
	for _, doc := range ok {
		if err := ValidateJSON(schema, doc); err != nil {
			t.Errorf("valid doc rejected: %v", err)
		}
	}
	bad := [][]byte{
		[]byte(`{}`),                        // missing required
		[]byte(`{"name":5}`),                // wrong type
		[]byte(`{"name":"x","n":1.5}`),      // non-integer
		[]byte(`{"name":"x","tags":[1]}`),   // bad item
		[]byte(`{"name":"x","extra":true}`), // unexpected property
	}
	for _, doc := range bad {
		if err := ValidateJSON(schema, doc); err == nil {
			t.Errorf("invalid doc accepted: %s", doc)
		}
	}
	// The embedded manifest schema parses and validates a minimal doc.
	if err := ValidateManifestJSON([]byte(`{"schema":"memnet/run-manifest/v1","seed":1}`)); err != nil {
		t.Errorf("minimal manifest rejected: %v", err)
	}
	if err := ValidateManifestJSON([]byte(`{"seed":1}`)); err == nil {
		t.Error("manifest missing schema accepted")
	}
}
