package obs

import (
	"encoding/json"
	"io"
	"runtime/debug"
	"sort"
)

// ManifestSchema identifies the manifest layout; bump on breaking
// changes. The checked-in manifest.schema.json validates this version.
const ManifestSchema = "memnet/run-manifest/v1"

// Manifest is the machine-readable record of one simulation run:
// everything needed to reproduce it (config, seed, toolchain, git ref)
// and everything it produced (results, per-node reports, metrics,
// fairness series). Config, Results, Nodes, and Fault are typed by the
// caller (core wires its own structs) so obs stays dependency-free.
type Manifest struct {
	Schema    string `json:"schema"`
	GitRef    string `json:"git_ref,omitempty"`
	GoVersion string `json:"go_version,omitempty"`

	Label    string `json:"label,omitempty"`
	Seed     int64  `json:"seed"`
	Workload string `json:"workload,omitempty"`

	Config  any `json:"config,omitempty"`
	Results any `json:"results,omitempty"`
	Nodes   any `json:"nodes,omitempty"`
	Fault   any `json:"fault,omitempty"`

	SampleIntervalPs int64              `json:"sample_interval_ps,omitempty"`
	Samples          int                `json:"samples,omitempty"`
	Fairness         map[string]float64 `json:"fairness,omitempty"`

	Metrics *MetricsDump `json:"metrics,omitempty"`
}

// MetricsDump is the end-of-run snapshot of a registry, sorted by
// metric name within each kind for deterministic output.
type MetricsDump struct {
	Counters   []CounterDump `json:"counters,omitempty"`
	Gauges     []GaugeDump   `json:"gauges,omitempty"`
	Vecs       []VecDump     `json:"vecs,omitempty"`
	Histograms []HistDump    `json:"histograms,omitempty"`
}

// CounterDump is one counter's final value.
type CounterDump struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeDump is one gauge's value at dump time.
type GaugeDump struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// VecDump is one vector's labelled values at dump time.
type VecDump struct {
	Name   string   `json:"name"`
	Labels []string `json:"labels"`
	Values []uint64 `json:"values"`
	Jain   float64  `json:"jain"`
}

// HistDump summarizes one histogram: count, mean and nearest-rank
// quantiles in picoseconds. Raw buckets are omitted — the histogram's
// resolution (quarter-octave) makes the quantile set a faithful and far
// smaller summary.
type HistDump struct {
	Name   string `json:"name"`
	Count  uint64 `json:"count"`
	MinPs  int64  `json:"min_ps"`
	MaxPs  int64  `json:"max_ps"`
	MeanPs int64  `json:"mean_ps"`
	P50Ps  int64  `json:"p50_ps"`
	P90Ps  int64  `json:"p90_ps"`
	P99Ps  int64  `json:"p99_ps"`
}

// Dump snapshots every registered metric, sorted by name within each
// kind. Probes are evaluated once, at call time; call it after the run
// completes. A nil registry returns nil.
func (r *Registry) Dump() *MetricsDump {
	if r == nil {
		return nil
	}
	d := &MetricsDump{}
	for _, c := range r.counters {
		d.Counters = append(d.Counters, CounterDump{Name: c.name, Value: c.v})
	}
	for i := range r.gauges {
		g := &r.gauges[i]
		d.Gauges = append(d.Gauges, GaugeDump{Name: g.name, Value: g.probe()})
	}
	for i := range r.vecs {
		v := &r.vecs[i]
		vals := append([]uint64(nil), v.probe()...)
		d.Vecs = append(d.Vecs, VecDump{
			Name:   v.name,
			Labels: v.labels,
			Values: vals,
			Jain:   Jain(vals),
		})
	}
	for _, h := range r.hists {
		d.Histograms = append(d.Histograms, HistDump{
			Name:   h.name,
			Count:  h.Count(),
			MinPs:  int64(h.Min()),
			MaxPs:  int64(h.Max()),
			MeanPs: int64(h.Mean()),
			P50Ps:  int64(h.Quantile(0.50)),
			P90Ps:  int64(h.Quantile(0.90)),
			P99Ps:  int64(h.Quantile(0.99)),
		})
	}
	sort.Slice(d.Counters, func(i, j int) bool { return d.Counters[i].Name < d.Counters[j].Name })
	sort.Slice(d.Gauges, func(i, j int) bool { return d.Gauges[i].Name < d.Gauges[j].Name })
	sort.Slice(d.Vecs, func(i, j int) bool { return d.Vecs[i].Name < d.Vecs[j].Name })
	sort.Slice(d.Histograms, func(i, j int) bool { return d.Histograms[i].Name < d.Histograms[j].Name })
	return d
}

// Attach fills the sampler-derived manifest fields: interval, sample
// count, and the final cumulative Jain index per vector.
func (m *Manifest) Attach(s *Sampler) {
	if s == nil || s.Samples() == 0 {
		return
	}
	m.SampleIntervalPs = int64(s.Interval())
	m.Samples = s.Samples()
	last := s.Samples() - 1
	for i := range s.vecs {
		row := s.vecRows[i][last]
		if m.Fairness == nil {
			//lint:coldpath end-of-run manifest assembly
			m.Fairness = make(map[string]float64)
		}
		m.Fairness[s.vecs[i].name] = Jain(row)
	}
}

// GitRef reports the VCS revision the binary was built from (via
// runtime/debug build info), with a "+dirty" suffix for modified trees.
// Empty when build info is unavailable (e.g. `go test` binaries).
func GitRef() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, dirty string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	return rev + dirty
}

// NewManifest returns a manifest stamped with the schema version,
// toolchain, and git ref.
func NewManifest() *Manifest {
	m := &Manifest{Schema: ManifestSchema, GitRef: GitRef()}
	if info, ok := debug.ReadBuildInfo(); ok {
		m.GoVersion = info.GoVersion
	}
	return m
}

// Encode writes the manifest as indented JSON.
func (m *Manifest) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
