package obs

import (
	"encoding/json"
	"io"
	"runtime/debug"
	"sort"
)

// ManifestSchema identifies the manifest layout; bump on breaking
// changes. The checked-in manifest.schema.json validates this version.
const ManifestSchema = "memnet/run-manifest/v1"

// Manifest is the machine-readable record of one simulation run:
// everything needed to reproduce it (config, seed, toolchain, git ref)
// and everything it produced (results, per-node reports, metrics,
// fairness series). Config, Results, Nodes, and Fault are typed by the
// caller (core wires its own structs) so obs stays dependency-free.
type Manifest struct {
	// Schema is ManifestSchema at write time.
	Schema string `json:"schema"`
	// GitRef is the VCS revision of the producing binary, when stamped.
	GitRef string `json:"git_ref,omitempty"`
	// GoVersion is the toolchain that built the producing binary.
	GoVersion string `json:"go_version,omitempty"`

	// Label is the paper-style configuration name.
	Label string `json:"label,omitempty"`
	// Seed is the workload seed the run used.
	Seed int64 `json:"seed"`
	// Workload names the traffic proxy.
	Workload string `json:"workload,omitempty"`

	// Config is the caller-typed full run configuration.
	Config any `json:"config,omitempty"`
	// Results is the caller-typed results record.
	Results any `json:"results,omitempty"`
	// Nodes is the caller-typed per-node report.
	Nodes any `json:"nodes,omitempty"`
	// Fault is the caller-typed fault-counter record.
	Fault any `json:"fault,omitempty"`
	// Timeline is the caller-typed recovery timeline: scheduled fault and
	// repair events with retrain windows and per-direction healed bits.
	Timeline any `json:"timeline,omitempty"`
	// Machine is the caller-typed parallel-engine introspection record
	// for per-machine runs: per-shard barrier wait, lookahead-slack
	// histograms, cross-shard inbox depth, and events-per-window gauges.
	Machine any `json:"machine,omitempty"`

	// SampleIntervalPs is the sampler period in picoseconds (0 = off).
	SampleIntervalPs int64 `json:"sample_interval_ps,omitempty"`
	// Samples counts interval snapshots the sampler took.
	Samples int `json:"samples,omitempty"`
	// Fairness maps series names to whole-run Jain fairness indices.
	Fairness map[string]float64 `json:"fairness,omitempty"`

	// Metrics is the end-of-run registry snapshot.
	Metrics *MetricsDump `json:"metrics,omitempty"`
}

// MetricsDump is the end-of-run snapshot of a registry, sorted by
// metric name within each kind for deterministic output.
type MetricsDump struct {
	// Counters holds every counter's final value.
	Counters []CounterDump `json:"counters,omitempty"`
	// Gauges holds every gauge's value at dump time.
	Gauges []GaugeDump `json:"gauges,omitempty"`
	// Vecs holds every labelled vector's values.
	Vecs []VecDump `json:"vecs,omitempty"`
	// Histograms holds every histogram's quantile summary.
	Histograms []HistDump `json:"histograms,omitempty"`
}

// CounterDump is one counter's final value.
type CounterDump struct {
	// Name is the registered metric name.
	Name string `json:"name"`
	// Value is the final count.
	Value uint64 `json:"value"`
}

// GaugeDump is one gauge's value at dump time.
type GaugeDump struct {
	// Name is the registered metric name.
	Name string `json:"name"`
	// Value is the gauge reading at dump time.
	Value int64 `json:"value"`
}

// VecDump is one vector's labelled values at dump time.
type VecDump struct {
	// Name is the registered metric name.
	Name string `json:"name"`
	// Labels names the vector's elements, index-aligned with Values.
	Labels []string `json:"labels"`
	// Values holds the per-element counts.
	Values []uint64 `json:"values"`
	// Jain is the Jain fairness index over Values.
	Jain float64 `json:"jain"`
}

// HistDump summarizes one histogram: count, mean and nearest-rank
// quantiles in picoseconds. Raw buckets are omitted — the histogram's
// resolution (quarter-octave) makes the quantile set a faithful and far
// smaller summary.
type HistDump struct {
	// Name is the registered metric name.
	Name string `json:"name"`
	// Count is the number of recorded samples.
	Count uint64 `json:"count"`
	// MinPs is the smallest recorded sample, in picoseconds.
	MinPs int64 `json:"min_ps"`
	// MaxPs is the largest recorded sample, in picoseconds.
	MaxPs int64 `json:"max_ps"`
	// MeanPs is the sample mean, in picoseconds.
	MeanPs int64 `json:"mean_ps"`
	// P50Ps is the nearest-rank median, in picoseconds.
	P50Ps int64 `json:"p50_ps"`
	// P90Ps is the nearest-rank 90th percentile, in picoseconds.
	P90Ps int64 `json:"p90_ps"`
	// P99Ps is the nearest-rank 99th percentile, in picoseconds.
	P99Ps int64 `json:"p99_ps"`
}

// Dump snapshots every registered metric, sorted by name within each
// kind. Probes are evaluated once, at call time; call it after the run
// completes. A nil registry returns nil.
func (r *Registry) Dump() *MetricsDump {
	if r == nil {
		return nil
	}
	d := &MetricsDump{}
	for _, c := range r.counters {
		d.Counters = append(d.Counters, CounterDump{Name: c.name, Value: c.v})
	}
	for i := range r.gauges {
		g := &r.gauges[i]
		d.Gauges = append(d.Gauges, GaugeDump{Name: g.name, Value: g.probe()})
	}
	for i := range r.vecs {
		v := &r.vecs[i]
		vals := append([]uint64(nil), v.probe()...)
		d.Vecs = append(d.Vecs, VecDump{
			Name:   v.name,
			Labels: v.labels,
			Values: vals,
			Jain:   Jain(vals),
		})
	}
	for _, h := range r.hists {
		d.Histograms = append(d.Histograms, HistDump{
			Name:   h.name,
			Count:  h.Count(),
			MinPs:  int64(h.Min()),
			MaxPs:  int64(h.Max()),
			MeanPs: int64(h.Mean()),
			P50Ps:  int64(h.Quantile(0.50)),
			P90Ps:  int64(h.Quantile(0.90)),
			P99Ps:  int64(h.Quantile(0.99)),
		})
	}
	sort.Slice(d.Counters, func(i, j int) bool { return d.Counters[i].Name < d.Counters[j].Name })
	sort.Slice(d.Gauges, func(i, j int) bool { return d.Gauges[i].Name < d.Gauges[j].Name })
	sort.Slice(d.Vecs, func(i, j int) bool { return d.Vecs[i].Name < d.Vecs[j].Name })
	sort.Slice(d.Histograms, func(i, j int) bool { return d.Histograms[i].Name < d.Histograms[j].Name })
	return d
}

// Attach fills the sampler-derived manifest fields: interval, sample
// count, and the final cumulative Jain index per vector.
func (m *Manifest) Attach(s *Sampler) {
	if s == nil || s.Samples() == 0 {
		return
	}
	m.SampleIntervalPs = int64(s.Interval())
	m.Samples = s.Samples()
	last := s.Samples() - 1
	for i := range s.vecs {
		row := s.vecRows[i][last]
		if m.Fairness == nil {
			//lint:coldpath end-of-run manifest assembly
			m.Fairness = make(map[string]float64)
		}
		m.Fairness[s.vecs[i].name] = Jain(row)
	}
}

// GitRef reports the VCS revision the binary was built from (via
// runtime/debug build info), with a "+dirty" suffix for modified trees.
// Empty when build info is unavailable (e.g. `go test` binaries).
func GitRef() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, dirty string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	return rev + dirty
}

// NewManifest returns a manifest stamped with the schema version,
// toolchain, and git ref.
func NewManifest() *Manifest {
	m := &Manifest{Schema: ManifestSchema, GitRef: GitRef()}
	if info, ok := debug.ReadBuildInfo(); ok {
		m.GoVersion = info.GoVersion
	}
	return m
}

// Encode writes the manifest as indented JSON.
func (m *Manifest) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
