package obs

import (
	"math/bits"

	"memnet/internal/sim"
)

// Histogram bucket layout: quarter-octave (4 sub-buckets per power of
// two) log-scale buckets over picosecond latencies. Bucket 0 holds
// t <= 0 and sub-quarter-octave values; the top bucket absorbs
// everything at or beyond 2^maxOctave ps (~4.7 minutes of sim time),
// far past any latency a memory network produces.
const (
	histSubBits = 2 // 4 sub-buckets per octave
	histSub     = 1 << histSubBits
	maxOctave   = 48
	// NumHistBuckets is the fixed bucket count of every Histogram.
	NumHistBuckets = maxOctave*histSub + 1
)

// Histogram is a fixed-bucket log-scale latency histogram. Observe is
// O(1), allocation-free, and nil-safe, so it can sit directly on hot
// paths behind the usual nil-receiver fast path.
type Histogram struct {
	name    string
	count   uint64
	sum     sim.Time
	min     sim.Time
	max     sim.Time
	buckets [NumHistBuckets]uint64
}

// bucketOf maps a latency to its bucket index.
func bucketOf(t sim.Time) int {
	if t <= 0 {
		return 0
	}
	v := uint64(t)
	oct := bits.Len64(v) - 1 // floor(log2(v))
	if oct >= maxOctave {
		return NumHistBuckets - 1
	}
	// The top histSubBits bits below the leading one select the
	// sub-bucket within the octave.
	var sub uint64
	if oct >= histSubBits {
		sub = (v >> uint(oct-histSubBits)) & (histSub - 1)
	} else {
		sub = (v << uint(histSubBits-oct)) & (histSub - 1)
	}
	return oct*histSub + int(sub) + 1
}

// bucketUpper returns the inclusive upper bound of bucket i, the value
// Quantile reports for ranks landing in the bucket.
func bucketUpper(i int) sim.Time {
	if i <= 0 {
		return 0
	}
	if i >= NumHistBuckets-1 {
		return sim.Time(1) << maxOctave
	}
	i--
	oct, sub := i/histSub, i%histSub
	if oct >= histSubBits {
		// Upper edge of the sub-bucket: (sub+1) stepped below the octave.
		return sim.Time((uint64(histSub+sub+1) << uint(oct-histSubBits)) - 1)
	}
	// Octaves below histSubBits are narrower than a sub-bucket step;
	// each bucket holds exactly one value.
	return sim.Time(uint64(histSub+sub) >> uint(histSubBits-oct))
}

// Observe records one latency.
func (h *Histogram) Observe(t sim.Time) {
	if h == nil {
		return
	}
	if h.count == 0 || t < h.min {
		h.min = t
	}
	if t > h.max {
		h.max = t
	}
	h.count++
	h.sum += t
	h.buckets[bucketOf(t)]++
}

// Count reports the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum reports the total of all observations.
func (h *Histogram) Sum() sim.Time {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean reports the average observation.
func (h *Histogram) Mean() sim.Time {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / sim.Time(h.count)
}

// Min reports the smallest observed sample (exact, not bucketed).
func (h *Histogram) Min() sim.Time {
	if h == nil {
		return 0
	}
	return h.min
}

// Max reports the largest observed sample (exact, not bucketed).
func (h *Histogram) Max() sim.Time {
	if h == nil {
		return 0
	}
	return h.max
}

// Quantile returns the q-th quantile (0..1) by nearest rank over the
// bucketed distribution: the upper bound of the bucket containing the
// ceil(q*count)-th smallest observation, clamped to the exact observed
// max. Bucket resolution bounds the error at one quarter-octave
// (< +19% of the true value).
func (h *Histogram) Quantile(q float64) sim.Time {
	if h == nil || h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum >= rank {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			if u < h.min {
				u = h.min
			}
			return u
		}
	}
	return h.max
}

// Name reports the interned metric name.
func (h *Histogram) Name() string { return h.name }
