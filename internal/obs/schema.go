package obs

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Minimal JSON-Schema validator covering the subset the run-manifest
// schema uses: "type" (single or list), "properties",
// "required", "items", and "additionalProperties": false. It exists so
// CI can validate emitted manifests against the checked-in schema with
// no third-party dependency; it is not a general JSON-Schema engine.

//go:embed manifest.schema.json
var manifestSchemaJSON []byte

// ManifestSchemaJSON returns the checked-in run-manifest schema.
func ManifestSchemaJSON() []byte { return manifestSchemaJSON }

// ValidateManifestJSON checks doc (a serialized manifest) against the
// embedded schema. It returns the first violation found, or nil.
func ValidateManifestJSON(doc []byte) error {
	return ValidateJSON(manifestSchemaJSON, doc)
}

// ValidateJSON checks doc against schema, both as raw JSON.
func ValidateJSON(schema, doc []byte) error {
	var s, d any
	if err := json.Unmarshal(schema, &s); err != nil {
		return fmt.Errorf("schema: %w", err)
	}
	if err := json.Unmarshal(doc, &d); err != nil {
		return fmt.Errorf("document: %w", err)
	}
	return validate(s, d, "$")
}

// validate applies one schema node to one document node. path is the
// JSON-path-ish location used in error messages.
func validate(schema, doc any, path string) error {
	sm, ok := schema.(map[string]any)
	if !ok {
		return fmt.Errorf("%s: schema node is not an object", path)
	}
	if t, ok := sm["type"]; ok {
		if err := checkType(t, doc, path); err != nil {
			return err
		}
	}
	if dm, ok := doc.(map[string]any); ok {
		if req, ok := sm["required"].([]any); ok {
			for _, r := range req {
				name, _ := r.(string)
				if _, present := dm[name]; !present {
					return fmt.Errorf("%s: missing required property %q", path, name)
				}
			}
		}
		props, _ := sm["properties"].(map[string]any)
		if extra, ok := sm["additionalProperties"].(bool); ok && !extra {
			for _, k := range sortedKeys(dm) {
				if _, known := props[k]; !known {
					return fmt.Errorf("%s: unexpected property %q", path, k)
				}
			}
		}
		for _, k := range sortedKeys(props) {
			if v, present := dm[k]; present {
				if err := validate(props[k], v, path+"."+k); err != nil {
					return err
				}
			}
		}
	}
	if da, ok := doc.([]any); ok {
		if items, ok := sm["items"]; ok {
			for i, v := range da {
				if err := validate(items, v, fmt.Sprintf("%s[%d]", path, i)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// checkType validates doc against a schema "type" value (string or
// list of strings).
func checkType(t, doc any, path string) error {
	var names []string
	switch tv := t.(type) {
	case string:
		names = []string{tv}
	case []any:
		for _, n := range tv {
			if s, ok := n.(string); ok {
				names = append(names, s)
			}
		}
	default:
		return fmt.Errorf("%s: malformed schema type %v", path, t)
	}
	for _, name := range names {
		if typeMatches(name, doc) {
			return nil
		}
	}
	return fmt.Errorf("%s: got %s, want %v", path, jsonTypeOf(doc), names)
}

// typeMatches reports whether doc satisfies the named JSON type.
func typeMatches(name string, doc any) bool {
	switch name {
	case "object":
		_, ok := doc.(map[string]any)
		return ok
	case "array":
		_, ok := doc.([]any)
		return ok
	case "string":
		_, ok := doc.(string)
		return ok
	case "number":
		_, ok := doc.(float64)
		return ok
	case "integer":
		f, ok := doc.(float64)
		return ok && f == math.Trunc(f)
	case "boolean":
		_, ok := doc.(bool)
		return ok
	case "null":
		return doc == nil
	}
	return false
}

// jsonTypeOf names doc's JSON type for error messages.
func jsonTypeOf(doc any) string {
	switch doc.(type) {
	case map[string]any:
		return "object"
	case []any:
		return "array"
	case string:
		return "string"
	case float64:
		return "number"
	case bool:
		return "boolean"
	case nil:
		return "null"
	}
	return "unknown"
}

// sortedKeys returns m's keys in sorted order so validation errors are
// deterministic.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	//lint:sorted keys collected then sorted before use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
