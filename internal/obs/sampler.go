package obs

import (
	"fmt"
	"io"
	"strings"

	"memnet/internal/sim"
)

// Sampler snapshots every registered gauge and vector at fixed sim-time
// intervals into compact columnar series. It is driven by the engine's
// probe hook (sim.Engine.SetProbe), which fires between events whenever
// the clock crosses a sample boundary — the sampler adds no events to
// the queue, so enabling it cannot reorder the simulation or change its
// event count.
type Sampler struct {
	interval sim.Time
	times    []sim.Time

	gauges []gauge
	series [][]int64 // one column per gauge, row per tick

	vecs    []vec
	vecRows [][][]uint64 // per vec: rows of snapshot copies
}

// StartSampler arms sampling on eng at the given interval. Every gauge
// and vector registered so far is sampled; call it after all
// registrations (typically last in the build). A nil registry returns a
// nil sampler, and nil Sampler methods are no-ops.
func (r *Registry) StartSampler(eng *sim.Engine, interval sim.Time) *Sampler {
	if r == nil {
		return nil
	}
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	s := &Sampler{
		interval: interval,
		gauges:   r.gauges,
		series:   make([][]int64, len(r.gauges)),
		vecs:     r.vecs,
		vecRows:  make([][][]uint64, len(r.vecs)),
	}
	eng.SetProbe(interval, s.tick)
	return s
}

// tick records one row. at is the sample boundary; the engine clock
// reads the same instant for the duration of the call.
func (s *Sampler) tick(at sim.Time) {
	s.times = append(s.times, at)
	for i := range s.gauges {
		s.series[i] = append(s.series[i], s.gauges[i].probe())
	}
	for i := range s.vecs {
		row := append([]uint64(nil), s.vecs[i].probe()...)
		s.vecRows[i] = append(s.vecRows[i], row)
	}
}

// Interval reports the sampling period.
func (s *Sampler) Interval() sim.Time {
	if s == nil {
		return 0
	}
	return s.interval
}

// Samples reports the number of rows recorded.
func (s *Sampler) Samples() int {
	if s == nil {
		return 0
	}
	return len(s.times)
}

// Times returns the sample timestamps (shared slice; do not mutate).
func (s *Sampler) Times() []sim.Time {
	if s == nil {
		return nil
	}
	return s.times
}

// GaugeSeries returns the recorded series for the named gauge, or nil.
func (s *Sampler) GaugeSeries(name string) []int64 {
	if s == nil {
		return nil
	}
	for i := range s.gauges {
		if s.gauges[i].name == name {
			return s.series[i]
		}
	}
	return nil
}

// VecRows returns the recorded snapshot rows for the named vector, or
// nil.
func (s *Sampler) VecRows(name string) [][]uint64 {
	if s == nil {
		return nil
	}
	for i := range s.vecs {
		if s.vecs[i].name == name {
			return s.vecRows[i]
		}
	}
	return nil
}

// Jain computes Jain's fairness index (Σx)²/(n·Σx²) over non-negative
// shares: 1.0 for perfectly equal service, 1/n when one member receives
// everything. An all-zero row reports 1 (nothing was unfair).
func Jain(xs []uint64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		v := float64(x)
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// FairnessSeries computes Jain's index per sample interval over the
// named vector's deltas (the cumulative snapshots differenced row to
// row): the time-resolved view of the paper's parking-lot starvation.
// The first row is differenced against zero.
func (s *Sampler) FairnessSeries(name string) []float64 {
	rows := s.VecRows(name)
	if rows == nil {
		return nil
	}
	out := make([]float64, len(rows))
	prev := make([]uint64, 0)
	delta := make([]uint64, 0)
	for i, row := range rows {
		delta = delta[:0]
		for j, v := range row {
			d := v
			if j < len(prev) {
				d -= prev[j]
			}
			delta = append(delta, d)
		}
		out[i] = Jain(delta)
		prev = append(prev[:0], row...)
	}
	return out
}

// WriteCSV dumps the sampled series: one row per tick, columns in
// registration order — time_ps, every gauge, every vector element
// (name[label]), and a jain(name) fairness column per vector.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if s == nil {
		return nil
	}
	var b strings.Builder
	b.WriteString("time_ps")
	for i := range s.gauges {
		b.WriteByte(',')
		b.WriteString(s.gauges[i].name)
	}
	for i := range s.vecs {
		v := &s.vecs[i]
		for _, lbl := range v.labels {
			fmt.Fprintf(&b, ",%s[%s]", v.name, lbl)
		}
		fmt.Fprintf(&b, ",jain(%s)", v.name)
	}
	b.WriteByte('\n')
	fair := make([][]float64, len(s.vecs))
	for i := range s.vecs {
		fair[i] = s.FairnessSeries(s.vecs[i].name)
	}
	for row, t := range s.times {
		fmt.Fprintf(&b, "%d", int64(t))
		for _, col := range s.series {
			fmt.Fprintf(&b, ",%d", col[row])
		}
		for i := range s.vecs {
			for _, v := range s.vecRows[i][row] {
				fmt.Fprintf(&b, ",%d", v)
			}
			fmt.Fprintf(&b, ",%.6f", fair[i][row])
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
