package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"memnet/internal/sim"
	"memnet/internal/span"
	"memnet/internal/trace"
)

// Perfetto / Chrome trace-event export.
//
// Packet lifecycles from the trace ring become nestable async slices
// (one track per packet ID: "b" at injection, "n" instants at each
// node, "e" at completion), and the sampler's gauge series become
// counter ("C") tracks, so per-node occupancy, credit stalls, and link
// state are plottable next to the packets that caused them. The output
// loads directly in https://ui.perfetto.dev or chrome://tracing.
//
// Chrome's JSON wants timestamps in microseconds; sim time is integer
// picoseconds, so ts values are exact multiples of 1e-6 and the export
// is byte-deterministic for a deterministic run (the golden-file test
// pins this).

// pfEvent is one trace event in Chrome trace-event JSON form.
type pfEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// tsOf converts sim time (ps) to Chrome trace microseconds.
func tsOf(t sim.Time) float64 { return float64(t) / 1e6 }

// packet-track process IDs: packets render under pid 1, counters under
// pid 2, causal spans under pid 3, so the groups stay separate in the
// UI.
const (
	pfPidPackets  = 1
	pfPidCounters = 2
	pfPidSpans    = 3
)

// phaseOf maps a lifecycle op to its async phase.
func phaseOf(op trace.Op) string {
	switch op {
	case trace.Inject:
		return "b"
	case trace.Complete:
		return "e"
	default:
		return "n"
	}
}

// WritePerfetto exports the retained packet lifecycle events and (when
// s is non-nil) every sampled gauge series as Chrome trace-event JSON.
// Events appear in stable order: lifecycle events chronologically (the
// ring's retention order), then counter rows tick by tick in gauge
// registration order.
func WritePerfetto(w io.Writer, log *trace.Log, s *Sampler) error {
	return writePerfetto(w, log, s, nil)
}

// WritePerfettoSpans is WritePerfetto plus the sampled causal spans:
// each transaction renders under the span process group as one
// whole-lifetime slice on its own track with one nested "X" slice per
// latency segment, and consecutive segments are linked by flow arrows
// ("s"/"f" with bp:"e") so the critical path reads as a chain across
// the waterfall. With nil spans the output is byte-identical to
// WritePerfetto.
func WritePerfettoSpans(w io.Writer, log *trace.Log, s *Sampler, spans []span.TxSpan) error {
	return writePerfetto(w, log, s, spans)
}

func writePerfetto(w io.Writer, log *trace.Log, s *Sampler, spans []span.TxSpan) error {
	bw := &errWriter{w: w}
	bw.puts("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
	first := true
	emit := func(ev pfEvent) {
		raw, err := json.Marshal(ev)
		if err != nil {
			bw.err = err
			return
		}
		if !first {
			bw.puts(",\n")
		}
		first = false
		bw.put(raw)
	}
	if log != nil {
		for _, e := range log.Events() {
			ev := pfEvent{
				Cat: "packet",
				Ph:  phaseOf(e.Op),
				Ts:  tsOf(e.At),
				Pid: pfPidPackets,
				ID:  fmt.Sprintf("%#x", e.ID),
			}
			switch ev.Ph {
			case "b", "e":
				ev.Name = fmt.Sprintf("tx %d", e.ID)
			default:
				ev.Name = fmt.Sprintf("%s@%d", e.Op, e.Node)
			}
			ev.Args = map[string]any{
				"node": int64(e.Node),
				"kind": e.Kind.String(),
				"addr": fmt.Sprintf("%#x", e.Addr),
			}
			emit(ev)
		}
	}
	if s != nil {
		for row, t := range s.times {
			for i := range s.gauges {
				emit(pfEvent{
					Name: s.gauges[i].name,
					Ph:   "C",
					Ts:   tsOf(t),
					Pid:  pfPidCounters,
					Args: map[string]any{"value": s.series[i][row]},
				})
			}
		}
	}
	for _, tx := range spans {
		tid := int64(tx.ID)
		emit(pfEvent{
			Name: fmt.Sprintf("tx %d", tx.ID),
			Cat:  "span",
			Ph:   "X",
			Ts:   tsOf(tx.Injected),
			Dur:  tsOf(tx.Latency()),
			Pid:  pfPidSpans,
			Tid:  tid,
			Args: map[string]any{
				"kind": tx.Kind,
				"addr": fmt.Sprintf("%#x", tx.Addr),
				"dst":  int64(tx.Dst),
			},
		})
		for k, sg := range tx.Segs {
			emit(pfEvent{
				Name: sg.Cause.String(),
				Cat:  "span",
				Ph:   "X",
				Ts:   tsOf(sg.At),
				Dur:  tsOf(sg.Dur),
				Pid:  pfPidSpans,
				Tid:  tid,
				Args: map[string]any{"loc": sg.Loc, "vc": int64(sg.VC)},
			})
			if k == 0 {
				continue
			}
			// Flow arrow from the previous segment's slice to this one.
			flowID := fmt.Sprintf("%#x.%d", tx.ID, k)
			prev := tx.Segs[k-1]
			emit(pfEvent{
				Name: "critical path", Cat: "span.flow", Ph: "s",
				Ts: tsOf(prev.At), Pid: pfPidSpans, Tid: tid, ID: flowID,
			})
			emit(pfEvent{
				Name: "critical path", Cat: "span.flow", Ph: "f", BP: "e",
				Ts: tsOf(sg.At), Pid: pfPidSpans, Tid: tid, ID: flowID,
			})
		}
	}
	bw.puts("\n]}\n")
	return bw.err
}

// errWriter is a sticky-error writer shell.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) put(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}

func (e *errWriter) puts(s string) { e.put([]byte(s)) }
