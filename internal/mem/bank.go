// Package mem implements the bank-level memory array timing model shared
// by DRAM and NVM cubes. Each bank has a single row buffer (open-page
// policy), serially-reusable data path, activate/precharge timing
// constraints, and — for DRAM — periodic refresh. The model answers one
// question per access: given an arrival time, when is the access done and
// until when is the bank busy?
package mem

import (
	"memnet/internal/config"
	"memnet/internal/sim"
)

// AccessKind distinguishes reads from writes at the array level.
type AccessKind uint8

const (
	// Read fetches one 64B block.
	Read AccessKind = iota
	// Write stores one 64B block; for NVM the cell-write occupancy (tWR)
	// dominates and keeps the bank busy long after the command issues.
	Write
)

// BankStats aggregates per-bank counters used by the latency and energy
// reports.
type BankStats struct {
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowMisses    uint64 // closed-row activates
	RowConflicts uint64 // precharge-then-activate
	Refreshes    uint64
	// BusyTime accumulates bank data-path occupancy, for utilization
	// accounting.
	BusyTime sim.Time
}

// Bank models one independent memory bank.
type Bank struct {
	timing config.MemTiming
	tech   config.MemTech

	openRow      int64 // -1 = closed (precharged)
	dirty        bool  // open row has unwritten-back modifications
	lastActivate sim.Time
	busy         sim.Resource

	nextRefresh sim.Time // 0 disabled

	stats BankStats
}

// NewBank returns a bank of the given technology. refreshOffset staggers
// the bank's refresh phase so that banks of a cube do not refresh in
// lockstep; it is ignored for technologies without refresh.
func NewBank(tech config.MemTech, timing config.MemTiming, refreshOffset sim.Time) *Bank {
	b := &Bank{timing: timing, tech: tech, openRow: -1}
	if timing.RefInterval > 0 {
		b.nextRefresh = refreshOffset % timing.RefInterval
		if b.nextRefresh == 0 {
			b.nextRefresh = timing.RefInterval
		}
	}
	return b
}

// Tech reports the bank's memory technology.
func (b *Bank) Tech() config.MemTech { return b.tech }

// Stats returns a copy of the bank's counters.
func (b *Bank) Stats() BankStats { return b.stats }

// OpenRow reports the currently open row, or -1 if the bank is
// precharged. Exposed for tests and the topology inspector.
func (b *Bank) OpenRow() int64 { return b.openRow }

// Access performs a read or write of the given row arriving at time now.
// It returns done, the time at which the access completes (data available
// for a read; write committed — and therefore acknowledgeable — for a
// write). The bank's data path is reserved internally, so back-to-back
// calls naturally queue.
func (b *Bank) Access(now sim.Time, row int64, kind AccessKind) (done sim.Time) {
	start := now
	if f := b.busy.FreeAt(); f > start {
		start = f
	}
	start = b.applyRefresh(start)

	var lat, background sim.Time
	switch {
	case b.openRow == row:
		b.stats.RowHits++
		lat = b.timing.TCL + b.timing.Burst
	case b.openRow < 0:
		b.stats.RowMisses++
		b.lastActivate = start
		lat = b.timing.TRCD + b.timing.TCL + b.timing.Burst
	default:
		b.stats.RowConflicts++
		// Precharge may not begin before tRAS has elapsed since the
		// previous activate.
		if earliest := b.lastActivate + b.timing.TRAS; earliest > start {
			start = earliest
		}
		// Evicting a dirty row requires committing its modified data to
		// the array — for PCM this is where the expensive cell-write
		// pulse (tWR = 320 ns) lands (decoupled sensing/buffering,
		// §2.4). The controller write-pauses in favor of demand
		// accesses: the eviction drains in the background after the new
		// activation, so it does not lengthen this access but occupies
		// the bank afterwards, throttling write bursts to one bank at
		// one row writeback per tWR. Idle time already spent cleaning
		// the row eagerly is credited.
		if b.dirty {
			background = b.timing.TWR
			if idle := start - b.busy.FreeAt(); idle > 0 {
				background -= idle
			}
			if background < 0 {
				background = 0
			}
		}
		b.dirty = false
		b.lastActivate = start + b.timing.TRP
		lat = b.timing.TRP + b.timing.TRCD + b.timing.TCL + b.timing.Burst
	}
	b.openRow = row

	if kind == Write {
		b.stats.Writes++
		b.dirty = true
	} else {
		b.stats.Reads++
	}

	done = start + lat
	b.busy.ReserveAt(start, done-start+background)
	b.stats.BusyTime += done - start + background
	return done
}

// applyRefresh advances start past any refresh windows that are due, and
// schedules subsequent windows. Refresh is modeled per-bank: every
// RefInterval the bank is unavailable for RefDuration.
func (b *Bank) applyRefresh(start sim.Time) sim.Time {
	if b.nextRefresh <= 0 {
		return start
	}
	for b.nextRefresh <= start {
		end := b.nextRefresh + b.timing.RefDuration
		if end > start {
			start = end
		}
		b.nextRefresh += b.timing.RefInterval
		b.stats.Refreshes++
		// Refresh closes the row.
		b.openRow = -1
	}
	return start
}

// FreeAt reports when the bank's data path next becomes free.
func (b *Bank) FreeAt() sim.Time { return b.busy.FreeAt() }
