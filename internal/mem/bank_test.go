package mem

import (
	"testing"

	"memnet/internal/config"
	"memnet/internal/sim"
)

func dramTiming() config.MemTiming {
	t := config.Default().DRAMTiming
	t.RefInterval = 0 // most tests disable refresh for exact arithmetic
	return t
}

func nvmTiming() config.MemTiming {
	return config.Default().NVMTiming
}

func TestRowMissTiming(t *testing.T) {
	tm := dramTiming()
	b := NewBank(config.DRAM, tm, 0)
	done := b.Access(0, 5, Read)
	want := tm.TRCD + tm.TCL + tm.Burst
	if done != want {
		t.Fatalf("closed-row read done at %v, want %v", done, want)
	}
	if b.OpenRow() != 5 {
		t.Fatal("row should stay open")
	}
	s := b.Stats()
	if s.RowMisses != 1 || s.RowHits != 0 || s.RowConflicts != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestRowHitTiming(t *testing.T) {
	tm := dramTiming()
	b := NewBank(config.DRAM, tm, 0)
	first := b.Access(0, 5, Read)
	done := b.Access(first, 5, Read)
	if done != first+tm.TCL+tm.Burst {
		t.Fatalf("row hit done at %v, want %v", done, first+tm.TCL+tm.Burst)
	}
	if b.Stats().RowHits != 1 {
		t.Fatal("hit not counted")
	}
}

func TestRowConflictTiming(t *testing.T) {
	tm := dramTiming()
	b := NewBank(config.DRAM, tm, 0)
	first := b.Access(0, 5, Read)
	// Conflict long after tRAS: full precharge + activate + read.
	start := first + 100*sim.Nanosecond
	done := b.Access(start, 9, Read)
	want := start + tm.TRP + tm.TRCD + tm.TCL + tm.Burst
	if done != want {
		t.Fatalf("conflict read done at %v, want %v", done, want)
	}
	if b.Stats().RowConflicts != 1 {
		t.Fatal("conflict not counted")
	}
}

func TestTRASEnforced(t *testing.T) {
	tm := dramTiming()
	b := NewBank(config.DRAM, tm, 0)
	b.Access(0, 5, Read) // activates at 0
	// Immediately conflicting access: precharge must wait until tRAS.
	done := b.Access(1*sim.Nanosecond, 9, Read)
	// The bank is busy until the first access's data is out, but the
	// precharge additionally cannot start before tRAS = 33ns.
	earliestPrecharge := tm.TRAS
	want := earliestPrecharge + tm.TRP + tm.TRCD + tm.TCL + tm.Burst
	if done != want {
		t.Fatalf("tRAS-limited conflict done at %v, want %v", done, want)
	}
}

func TestDirtyWritebackOccupiesBank(t *testing.T) {
	tm := nvmTiming()
	b := NewBank(config.NVM, tm, 0)
	wdone := b.Access(0, 5, Write) // opens row 5, marks dirty
	// Immediate conflict: the eviction writeback drains in the
	// background, so this access's latency excludes tWR...
	d2 := b.Access(wdone, 9, Read)
	if d2 >= wdone+tm.TWR {
		t.Fatalf("demand read waited for the full write pulse: %v", d2)
	}
	// ...but the bank stays occupied for the background writeback, so a
	// third access (row hit on 9) queues behind it.
	d3 := b.Access(d2, 9, Read)
	if d3 < d2+tm.TWR {
		t.Fatalf("background writeback did not occupy the bank: %v < %v",
			d3, d2+tm.TWR)
	}
}

func TestEagerWritebackCredit(t *testing.T) {
	tm := nvmTiming()
	b := NewBank(config.NVM, tm, 0)
	wdone := b.Access(0, 5, Write)
	// After a long idle period the controller has already cleaned the
	// row: a conflicting access pays no writeback occupancy at all.
	start := wdone + tm.TWR + 10*sim.Nanosecond
	d2 := b.Access(start, 9, Read)
	want := start + tm.TRP + tm.TRCD + tm.TCL + tm.Burst
	if d2 != want {
		t.Fatalf("eager-cleaned conflict done at %v, want %v", d2, want)
	}
	// And the bank frees right at d2 (no residual writeback).
	if b.FreeAt() != d2 {
		t.Fatalf("bank busy until %v, want %v", b.FreeAt(), d2)
	}
}

func TestCleanEvictionHasNoWriteback(t *testing.T) {
	tm := nvmTiming()
	b := NewBank(config.NVM, tm, 0)
	rdone := b.Access(0, 5, Read) // clean row
	d2 := b.Access(rdone, 9, Read)
	want := rdone + tm.TRP + tm.TRCD + tm.TCL + tm.Burst
	if d2 != want {
		t.Fatalf("clean conflict done at %v, want %v", d2, want)
	}
	if b.FreeAt() != d2 {
		t.Fatal("no background occupancy expected for clean eviction")
	}
}

func TestBankSelfQueueing(t *testing.T) {
	tm := dramTiming()
	b := NewBank(config.DRAM, tm, 0)
	d1 := b.Access(0, 1, Read)
	d2 := b.Access(0, 1, Read) // same instant: must serialize
	if d2 <= d1 {
		t.Fatalf("concurrent accesses did not serialize: %v <= %v", d2, d1)
	}
	if d2 != d1+tm.TCL+tm.Burst {
		t.Fatalf("second access (row hit) done at %v, want %v", d2, d1+tm.TCL+tm.Burst)
	}
}

func TestRefresh(t *testing.T) {
	tm := config.Default().DRAMTiming // refresh on
	b := NewBank(config.DRAM, tm, 0)
	b.Access(0, 1, Read)
	// Access right after the first refresh window opens.
	start := tm.RefInterval + 1
	done := b.Access(start, 1, Read)
	// Refresh closed the row, so this is a miss, delayed by the
	// remaining refresh duration.
	wantStart := tm.RefInterval + tm.RefDuration
	want := wantStart + tm.TRCD + tm.TCL + tm.Burst
	if done != want {
		t.Fatalf("post-refresh access done at %v, want %v", done, want)
	}
	if b.Stats().Refreshes != 1 {
		t.Fatalf("refreshes = %d", b.Stats().Refreshes)
	}
	if b.Stats().RowMisses != 2 {
		t.Fatalf("refresh should close the row (misses=%d)", b.Stats().RowMisses)
	}
}

func TestNVMHasNoRefresh(t *testing.T) {
	tm := nvmTiming()
	if tm.RefInterval != 0 {
		t.Fatal("NVM timing should disable refresh")
	}
	b := NewBank(config.NVM, tm, 0)
	b.Access(0, 1, Read)
	b.Access(100*sim.Millisecond, 1, Read)
	if b.Stats().Refreshes != 0 {
		t.Fatal("NVM refreshed")
	}
}

func TestRefreshStagger(t *testing.T) {
	tm := config.Default().DRAMTiming
	b0 := NewBank(config.DRAM, tm, 0)
	b1 := NewBank(config.DRAM, tm, 97*sim.Nanosecond)
	// Drive both past one interval and compare first-refresh effects via
	// access at the same instant.
	at := tm.RefInterval + 50*sim.Nanosecond
	d0 := b0.Access(at, 1, Read)
	d1 := b1.Access(at, 1, Read)
	if d0 == d1 {
		t.Fatal("staggered banks refreshed identically")
	}
}

func TestBusyTimeAccounting(t *testing.T) {
	tm := dramTiming()
	b := NewBank(config.DRAM, tm, 0)
	d := b.Access(0, 1, Read)
	if b.Stats().BusyTime != d {
		t.Fatalf("busy %v != done %v", b.Stats().BusyTime, d)
	}
}

func TestTechAccessor(t *testing.T) {
	if NewBank(config.NVM, nvmTiming(), 0).Tech() != config.NVM {
		t.Fatal("tech accessor")
	}
}
