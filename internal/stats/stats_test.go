package stats

import (
	"testing"

	"memnet/internal/packet"
	"memnet/internal/sim"
)

func donePacket(kind packet.Kind, inj, arr, dep, comp sim.Time, hops int) *packet.Packet {
	return &packet.Packet{
		Kind: kind, Injected: inj, ArrivedMem: arr,
		DepartedMem: dep, Completed: comp, Hops: hops,
	}
}

func TestBreakdownMath(t *testing.T) {
	b := Breakdown{ToMem: 10, InMem: 20, FromMem: 30}
	if b.Total() != 60 {
		t.Fatal("total")
	}
	to, in, from := b.Fractions()
	if to != 10.0/60 || in != 20.0/60 || from != 30.0/60 {
		t.Fatal("fractions")
	}
	var zero Breakdown
	a, bb, c := zero.Fractions()
	if a != 0 || bb != 0 || c != 0 {
		t.Fatal("zero fractions must not NaN")
	}
}

func TestCollectorAverages(t *testing.T) {
	c := NewCollector(false)
	c.Complete(donePacket(packet.ReadResp, 0, 10, 30, 40, 3))
	c.Complete(donePacket(packet.WriteAck, 0, 20, 40, 60, 5))
	if c.Completed() != 2 || c.Reads() != 1 || c.Writes() != 1 {
		t.Fatal("counts")
	}
	mb := c.MeanBreakdown()
	if mb.ToMem != 15 || mb.InMem != 20 || mb.FromMem != 15 {
		t.Fatalf("mean breakdown %+v", mb)
	}
	if c.MeanLatency() != 50 {
		t.Fatalf("mean latency %v", c.MeanLatency())
	}
	if c.MeanHops() != 4 {
		t.Fatalf("mean hops %v", c.MeanHops())
	}
	if c.FinishTime() != 60 {
		t.Fatalf("finish %v", c.FinishTime())
	}
}

func TestCollectorEmpty(t *testing.T) {
	c := NewCollector(true)
	if c.MeanLatency() != 0 || c.MeanHops() != 0 || c.Percentile(99) != 0 {
		t.Fatal("empty collector should report zeros")
	}
}

func TestPercentiles(t *testing.T) {
	c := NewCollector(true)
	// Latencies 1..100ns.
	for i := 1; i <= 100; i++ {
		lat := sim.Time(i) * sim.Nanosecond
		c.Complete(donePacket(packet.ReadResp, 0, 0, 0, lat, 1))
	}
	if p := c.Percentile(50); p < 49*sim.Nanosecond || p > 52*sim.Nanosecond {
		t.Fatalf("p50 = %v", p)
	}
	if p := c.Percentile(99); p < 98*sim.Nanosecond {
		t.Fatalf("p99 = %v", p)
	}
	if p := c.Percentile(0); p != 1*sim.Nanosecond {
		t.Fatalf("p0 = %v", p)
	}
	if p := c.Percentile(100); p != 100*sim.Nanosecond {
		t.Fatalf("p100 = %v", p)
	}
}

func TestNoSamplesWhenDisabled(t *testing.T) {
	c := NewCollector(false)
	c.Complete(donePacket(packet.ReadResp, 0, 1, 2, 3, 1))
	if c.Percentile(50) != 0 {
		t.Fatal("samples retained despite keepSamples=false")
	}
}

func TestNegativeComponentPanics(t *testing.T) {
	c := NewCollector(false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	// DepartedMem before ArrivedMem.
	c.Complete(donePacket(packet.ReadResp, 0, 20, 10, 30, 1))
}
