package stats

import (
	"testing"

	"memnet/internal/packet"
	"memnet/internal/sim"
)

func donePacket(kind packet.Kind, inj, arr, dep, comp sim.Time, hops int) *packet.Packet {
	return &packet.Packet{
		Kind: kind, Injected: inj, ArrivedMem: arr,
		DepartedMem: dep, Completed: comp, Hops: hops,
	}
}

func TestBreakdownMath(t *testing.T) {
	b := Breakdown{ToMem: 10, InMem: 20, FromMem: 30}
	if b.Total() != 60 {
		t.Fatal("total")
	}
	to, in, from := b.Fractions()
	if to != 10.0/60 || in != 20.0/60 || from != 30.0/60 {
		t.Fatal("fractions")
	}
	var zero Breakdown
	a, bb, c := zero.Fractions()
	if a != 0 || bb != 0 || c != 0 {
		t.Fatal("zero fractions must not NaN")
	}
}

func TestCollectorAverages(t *testing.T) {
	c := NewCollector(false)
	c.Complete(donePacket(packet.ReadResp, 0, 10, 30, 40, 3))
	c.Complete(donePacket(packet.WriteAck, 0, 20, 40, 60, 5))
	if c.Completed() != 2 || c.Reads() != 1 || c.Writes() != 1 {
		t.Fatal("counts")
	}
	mb := c.MeanBreakdown()
	if mb.ToMem != 15 || mb.InMem != 20 || mb.FromMem != 15 {
		t.Fatalf("mean breakdown %+v", mb)
	}
	if c.MeanLatency() != 50 {
		t.Fatalf("mean latency %v", c.MeanLatency())
	}
	if c.MeanHops() != 4 {
		t.Fatalf("mean hops %v", c.MeanHops())
	}
	if c.FinishTime() != 60 {
		t.Fatalf("finish %v", c.FinishTime())
	}
}

func TestCollectorEmpty(t *testing.T) {
	c := NewCollector(true)
	if c.MeanLatency() != 0 || c.MeanHops() != 0 || c.Percentile(99) != 0 {
		t.Fatal("empty collector should report zeros")
	}
}

func TestPercentiles(t *testing.T) {
	c := NewCollector(true)
	// Latencies 1..100ns.
	for i := 1; i <= 100; i++ {
		lat := sim.Time(i) * sim.Nanosecond
		c.Complete(donePacket(packet.ReadResp, 0, 0, 0, lat, 1))
	}
	if p := c.Percentile(50); p < 49*sim.Nanosecond || p > 52*sim.Nanosecond {
		t.Fatalf("p50 = %v", p)
	}
	if p := c.Percentile(99); p < 98*sim.Nanosecond {
		t.Fatalf("p99 = %v", p)
	}
	if p := c.Percentile(0); p != 1*sim.Nanosecond {
		t.Fatalf("p0 = %v", p)
	}
	if p := c.Percentile(100); p != 100*sim.Nanosecond {
		t.Fatalf("p100 = %v", p)
	}
}

// TestStridedReservoir: the reservoir admits every stride-th completion
// and rebalances by halving, so the retained set is always exactly the
// completions with index ≡ 0 (mod stride) — spanning the whole run, not
// just its first window.
func TestStridedReservoir(t *testing.T) {
	c := NewCollector(true)
	n := 3 * reservoirCap // forces two halvings (stride 1 → 2 → 4)
	for i := 0; i < n; i++ {
		c.sample(sim.Time(i))
	}
	if c.stride != 4 {
		t.Fatalf("stride = %d, want 4 after %d offers", c.stride, n)
	}
	if len(c.samples) > reservoirCap {
		t.Fatalf("reservoir overflowed: %d > %d", len(c.samples), reservoirCap)
	}
	for i, s := range c.samples {
		if want := sim.Time(i) * sim.Time(c.stride); s != want {
			t.Fatalf("samples[%d] = %v, want %v (every stride-th value)", i, s, want)
		}
	}
	// The retained window spans the run's tail, not just its head.
	last := c.samples[len(c.samples)-1]
	if last < sim.Time(n)-sim.Time(2*c.stride) {
		t.Fatalf("last retained sample %v does not reach the end of the run (%d)", last, n)
	}
	// Determinism: a second pass over the same stream retains the same set.
	c2 := NewCollector(true)
	for i := 0; i < n; i++ {
		c2.sample(sim.Time(i))
	}
	if len(c2.samples) != len(c.samples) {
		t.Fatalf("rerun retained %d samples, first run %d", len(c2.samples), len(c.samples))
	}
	for i := range c.samples {
		if c.samples[i] != c2.samples[i] {
			t.Fatal("rerun retained a different sample set")
		}
	}
}

// TestStridedPercentileUnbiased: on a run much longer than the
// reservoir, percentiles reflect the whole distribution. The old
// first-N reservoir would report the warm-up values only (here: all
// low), skewing p50 to ~25% of the true median.
func TestStridedPercentileUnbiased(t *testing.T) {
	c := NewCollector(true)
	n := 4 * reservoirCap
	// Latency ramps linearly over the run: 1..n picoseconds.
	for i := 1; i <= n; i++ {
		c.Complete(donePacket(packet.ReadResp, 0, 0, 0, sim.Time(i), 1))
	}
	p50 := c.Percentile(50)
	mid := sim.Time(n / 2)
	if p50 < mid*9/10 || p50 > mid*11/10 {
		t.Fatalf("p50 = %v, want ≈%v (whole-run median, not warm-up window)", p50, mid)
	}
}

func TestNoSamplesWhenDisabled(t *testing.T) {
	c := NewCollector(false)
	c.Complete(donePacket(packet.ReadResp, 0, 1, 2, 3, 1))
	if c.Percentile(50) != 0 {
		t.Fatal("samples retained despite keepSamples=false")
	}
}

func TestNegativeComponentPanics(t *testing.T) {
	c := NewCollector(false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	// DepartedMem before ArrivedMem.
	c.Complete(donePacket(packet.ReadResp, 0, 20, 10, 30, 1))
}
