// Package stats collects per-transaction measurements and produces the
// paper's reporting quantities: the to-memory / in-memory / from-memory
// latency decomposition of Fig. 5, average round-trip latency, and
// throughput (completion time of a fixed trace), from which the
// experiment harness computes speedups.
package stats

import (
	"fmt"
	"sort"

	"memnet/internal/packet"
	"memnet/internal/sim"
)

// Breakdown is the three-way latency split of Fig. 5 plus the total.
type Breakdown struct {
	ToMem   sim.Time
	InMem   sim.Time
	FromMem sim.Time
}

// Total returns the end-to-end latency.
func (b Breakdown) Total() sim.Time { return b.ToMem + b.InMem + b.FromMem }

// Fractions returns the three components normalized to the total.
func (b Breakdown) Fractions() (to, in, from float64) {
	t := float64(b.Total())
	if t == 0 {
		return 0, 0, 0
	}
	return float64(b.ToMem) / t, float64(b.InMem) / t, float64(b.FromMem) / t
}

// Collector accumulates completed transactions for one simulated port.
type Collector struct {
	completed uint64
	reads     uint64
	writes    uint64

	sumTo, sumIn, sumFrom sim.Time
	sumHops               uint64

	// samples retains individual latencies for percentile queries when
	// enabled: a deterministic strided reservoir (every stride-th
	// completion, by completion index) bounded at reservoirCap. When the
	// reservoir fills, it is compacted in place to every 2nd retained
	// sample and the stride doubles, so the retained set is always
	// exactly the completions whose index ≡ 0 (mod stride) — an unbiased
	// thinning of the whole run, not its first window, and identical
	// across reruns of the same seed.
	keepSamples bool
	samples     []sim.Time
	seen        uint64 // completions offered to the reservoir
	stride      uint64 // current admission stride (power of two)

	finish sim.Time // completion time of the last transaction
}

// NewCollector returns an empty collector. If keepSamples is true,
// individual total latencies are retained (up to a fixed reservoir) for
// percentile reporting.
func NewCollector(keepSamples bool) *Collector {
	return &Collector{keepSamples: keepSamples}
}

const reservoirCap = 1 << 16

// Complete records a finished transaction from its response packet. The
// packet must carry all four timestamps.
func (c *Collector) Complete(p *packet.Packet) {
	c.completed++
	if p.Kind.IsRead() {
		c.reads++
	} else {
		c.writes++
	}
	to := p.ArrivedMem - p.Injected
	in := p.DepartedMem - p.ArrivedMem
	from := p.Completed - p.DepartedMem
	if to < 0 || in < 0 || from < 0 {
		panic(fmt.Sprintf("stats: negative latency component for %v: to=%v in=%v from=%v",
			p, to, in, from))
	}
	c.sumTo += to
	c.sumIn += in
	c.sumFrom += from
	c.sumHops += uint64(p.Hops)
	if c.keepSamples {
		c.sample(to + in + from)
	}
	if p.Completed > c.finish {
		c.finish = p.Completed
	}
}

// sample admits t into the strided reservoir if its completion index
// lands on the current stride, halving the retained set (and doubling
// the stride) whenever the reservoir fills.
func (c *Collector) sample(t sim.Time) {
	if c.stride == 0 {
		c.stride = 1
	}
	idx := c.seen
	c.seen++
	if idx%c.stride != 0 {
		return
	}
	if len(c.samples) == reservoirCap {
		// Keep every 2nd retained sample: survivors are the completions
		// with index ≡ 0 (mod 2*stride), restoring the invariant under
		// the doubled stride.
		half := c.samples[:0]
		for i := 0; i < len(c.samples); i += 2 {
			half = append(half, c.samples[i])
		}
		c.samples = half
		c.stride *= 2
		if idx%c.stride != 0 {
			return
		}
	}
	c.samples = append(c.samples, t)
}

// Completed reports the number of recorded transactions.
func (c *Collector) Completed() uint64 { return c.completed }

// Reads and Writes report the transaction mix.
func (c *Collector) Reads() uint64  { return c.reads }
func (c *Collector) Writes() uint64 { return c.writes }

// FinishTime reports the completion time of the last transaction — the
// experiment harness's execution-time metric.
func (c *Collector) FinishTime() sim.Time { return c.finish }

// MeanBreakdown returns the average latency decomposition.
func (c *Collector) MeanBreakdown() Breakdown {
	if c.completed == 0 {
		return Breakdown{}
	}
	n := sim.Time(c.completed)
	return Breakdown{ToMem: c.sumTo / n, InMem: c.sumIn / n, FromMem: c.sumFrom / n}
}

// MeanLatency returns the average end-to-end latency.
func (c *Collector) MeanLatency() sim.Time { return c.MeanBreakdown().Total() }

// MeanHops returns the average response-path hop count per transaction.
func (c *Collector) MeanHops() float64 {
	if c.completed == 0 {
		return 0
	}
	return float64(c.sumHops) / float64(c.completed)
}

// Percentile returns the p-th percentile (0..100) of total latency by
// rank selection: the retained sample at (floor) rank p/100*(n-1) of
// the sorted reservoir, with no interpolation between samples. The
// reservoir is a deterministic stride decimation of the whole run (see
// sample), so long-run percentiles reflect steady state, not the
// warm-up window. Requires sample retention; returns 0 otherwise.
func (c *Collector) Percentile(p float64) sim.Time {
	if len(c.samples) == 0 {
		return 0
	}
	s := make([]sim.Time, len(c.samples))
	copy(s, c.samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p / 100 * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
