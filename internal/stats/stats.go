// Package stats collects per-transaction measurements and produces the
// paper's reporting quantities: the to-memory / in-memory / from-memory
// latency decomposition of Fig. 5, average round-trip latency, and
// throughput (completion time of a fixed trace), from which the
// experiment harness computes speedups.
package stats

import (
	"fmt"
	"sort"

	"memnet/internal/packet"
	"memnet/internal/sim"
)

// Breakdown is the three-way latency split of Fig. 5 plus the total.
type Breakdown struct {
	ToMem   sim.Time
	InMem   sim.Time
	FromMem sim.Time
}

// Total returns the end-to-end latency.
func (b Breakdown) Total() sim.Time { return b.ToMem + b.InMem + b.FromMem }

// Fractions returns the three components normalized to the total.
func (b Breakdown) Fractions() (to, in, from float64) {
	t := float64(b.Total())
	if t == 0 {
		return 0, 0, 0
	}
	return float64(b.ToMem) / t, float64(b.InMem) / t, float64(b.FromMem) / t
}

// Collector accumulates completed transactions for one simulated port.
type Collector struct {
	completed uint64
	reads     uint64
	writes    uint64

	sumTo, sumIn, sumFrom sim.Time
	sumHops               uint64

	// samples retains individual latencies for percentile queries when
	// enabled (bounded reservoir to keep memory flat).
	keepSamples bool
	samples     []sim.Time

	finish sim.Time // completion time of the last transaction
}

// NewCollector returns an empty collector. If keepSamples is true,
// individual total latencies are retained (up to a fixed reservoir) for
// percentile reporting.
func NewCollector(keepSamples bool) *Collector {
	return &Collector{keepSamples: keepSamples}
}

const reservoirCap = 1 << 16

// Complete records a finished transaction from its response packet. The
// packet must carry all four timestamps.
func (c *Collector) Complete(p *packet.Packet) {
	c.completed++
	if p.Kind.IsRead() {
		c.reads++
	} else {
		c.writes++
	}
	to := p.ArrivedMem - p.Injected
	in := p.DepartedMem - p.ArrivedMem
	from := p.Completed - p.DepartedMem
	if to < 0 || in < 0 || from < 0 {
		panic(fmt.Sprintf("stats: negative latency component for %v: to=%v in=%v from=%v",
			p, to, in, from))
	}
	c.sumTo += to
	c.sumIn += in
	c.sumFrom += from
	c.sumHops += uint64(p.Hops)
	if c.keepSamples && len(c.samples) < reservoirCap {
		c.samples = append(c.samples, to+in+from)
	}
	if p.Completed > c.finish {
		c.finish = p.Completed
	}
}

// Completed reports the number of recorded transactions.
func (c *Collector) Completed() uint64 { return c.completed }

// Reads and Writes report the transaction mix.
func (c *Collector) Reads() uint64  { return c.reads }
func (c *Collector) Writes() uint64 { return c.writes }

// FinishTime reports the completion time of the last transaction — the
// experiment harness's execution-time metric.
func (c *Collector) FinishTime() sim.Time { return c.finish }

// MeanBreakdown returns the average latency decomposition.
func (c *Collector) MeanBreakdown() Breakdown {
	if c.completed == 0 {
		return Breakdown{}
	}
	n := sim.Time(c.completed)
	return Breakdown{ToMem: c.sumTo / n, InMem: c.sumIn / n, FromMem: c.sumFrom / n}
}

// MeanLatency returns the average end-to-end latency.
func (c *Collector) MeanLatency() sim.Time { return c.MeanBreakdown().Total() }

// MeanHops returns the average response-path hop count per transaction.
func (c *Collector) MeanHops() float64 {
	if c.completed == 0 {
		return 0
	}
	return float64(c.sumHops) / float64(c.completed)
}

// Percentile returns the p-th percentile (0..100) of total latency.
// Requires sample retention; returns 0 otherwise.
func (c *Collector) Percentile(p float64) sim.Time {
	if len(c.samples) == 0 {
		return 0
	}
	s := make([]sim.Time, len(c.samples))
	copy(s, c.samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p / 100 * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
