package stats

// FaultCounters aggregates the resilience layer's whole-run counters:
// what was injected (lane failures, link and cube kills), what the
// network absorbed (CRC errors, retransmissions, drops), and how routing
// adapted (salvaged reroutes, bounced in-flight packets, re-homed
// addresses). All-zero when fault injection is disabled, so it is inert
// in golden-result comparisons.
type FaultCounters struct {
	// CRCErrors counts link transmissions corrupted in flight.
	CRCErrors uint64
	// Retries counts link-level retransmissions out of retry buffers.
	Retries uint64
	// Dropped counts packets abandoned after exhausting MaxRetries.
	Dropped uint64
	// Rerouted counts packets salvaged off dead links and re-sent on
	// route-around paths.
	Rerouted uint64
	// Bounced counts in-flight packets that reached a dead cube and were
	// redirected to its spare.
	Bounced uint64
	// Rehomed counts injections whose home cube was dead and that were
	// redirected to the spare at the source.
	Rehomed uint64
	// LaneFails, LinksKilled, and CubesKilled count applied scheduled
	// faults (LaneFails includes the down half of lane flaps).
	LaneFails   uint64
	LinksKilled uint64
	CubesKilled uint64
	// LinksRepaired, CubesRepaired, and LaneRepairs count applied
	// scheduled recoveries: links retrained back into service, cube
	// address ranges re-homed back from their spares, and flapped
	// lanes re-bound to full width.
	LinksRepaired uint64
	CubesRepaired uint64
	LaneRepairs   uint64
	// HealedBits counts bits transmitted on link directions after they
	// completed retraining — nonzero exactly when post-repair traffic
	// routed back over healed links.
	HealedBits uint64
}

// Any reports whether any counter is nonzero.
func (f FaultCounters) Any() bool { return f != (FaultCounters{}) }
