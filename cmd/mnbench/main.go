// Command mnbench measures the simulator's hot loop and records the
// result in BENCH_engine.json, the perf baseline future changes are
// judged against. It reruns the same work as the repo's
// BenchmarkFig4TopologySpeedup (the end-to-end figure regeneration that
// funnels every subsystem through sim.Engine) plus the raw event-dispatch
// microbenchmark, and emits both next to the recorded pre-overhaul seed
// numbers so the report is self-contained:
//
//	mnbench                  # write BENCH_engine.json in the cwd
//	mnbench -out /tmp/b.json # elsewhere
//	mnbench -txns 8000       # heavier per-run trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"memnet/internal/experiments"
	"memnet/internal/sim"
)

// Measurement is one benchmark result in ns/op + allocation terms.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Comparison pairs the recorded seed baseline with a fresh measurement.
type Comparison struct {
	Description string `json:"description"`
	// Shards is the worker-goroutine count the measurement ran with
	// (1 = sequential engine; 0 for pre-parallel benchmarks).
	Shards      int         `json:"shards,omitempty"`
	Seed        Measurement `json:"seed_baseline"`
	Current     Measurement `json:"current"`
	NsDeltaPct  float64     `json:"ns_delta_pct"`
	AllocsDelta float64     `json:"allocs_delta_pct"`
}

// Report is the BENCH_engine.json schema.
type Report struct {
	Note         string `json:"note"`
	Transactions uint64 `json:"transactions_per_run"`
	// CPUs and GOMAXPROCS record the machine the numbers were taken on:
	// the FigNParallel speedups are bounded by min(shards, CPUs), so a
	// 1-CPU container legitimately records ~1x there.
	CPUs       int                   `json:"cpus"`
	GOMAXPROCS int                   `json:"gomaxprocs"`
	Benchmarks map[string]Comparison `json:"benchmarks"`
}

// Seed-engine numbers, recorded on the container/heap scheduler at the
// growth seed (commit d04e491) with -benchtime 3x -benchmem on the same
// workload sizes mnbench runs. They are the "before" in every report
// this tool writes; "current" is measured fresh each invocation.
var seedBaseline = map[string]Measurement{
	"Fig4TopologySpeedup": {NsPerOp: 2608497079, AllocsPerOp: 21083629, BytesPerOp: 487119733, Iterations: 3},
	"EngineEvents":        {NsPerOp: 91.76, AllocsPerOp: 2, BytesPerOp: 48, Iterations: 13590280},
}

func measure(f func(b *testing.B)) Measurement {
	r := testing.Benchmark(f)
	return Measurement{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

func compare(desc string, seed, cur Measurement) Comparison {
	pct := func(before, after float64) float64 {
		if before == 0 {
			return 0
		}
		return (after - before) / before * 100
	}
	return Comparison{
		Description: desc,
		Seed:        seed,
		Current:     cur,
		NsDeltaPct:  pct(seed.NsPerOp, cur.NsPerOp),
		AllocsDelta: pct(float64(seed.AllocsPerOp), float64(cur.AllocsPerOp)),
	}
}

func main() {
	var (
		out  = flag.String("out", "BENCH_engine.json", "report path")
		txns = flag.Uint64("txns", 4000, "transactions per simulation run (matches bench_test default)")
	)
	flag.Parse()

	rep := Report{
		Note: "Engine hot-path baseline. Regenerate with `go run ./cmd/mnbench` " +
			"after any scheduler or hot-path change; negative deltas are improvements " +
			"over the container/heap seed engine. Fig4Parallel{2,4,8} share the " +
			"sequential Fig4 seed baseline, so their ns_delta_pct is the parallel " +
			"speedup trajectory (bounded by min(shards, cpus)).",
		Transactions: *txns,
		CPUs:         runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Benchmarks:   map[string]Comparison{},
	}

	fig4Bench := func(parallel int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := experiments.NewRunner(experiments.Options{Transactions: *txns, Seed: 1, Parallel: parallel})
				if _, err := r.Fig4(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	fmt.Fprintln(os.Stderr, "mnbench: running Fig4TopologySpeedup...")
	fig4 := measure(fig4Bench(1))
	seq := compare(
		"End-to-end Fig. 4 regeneration: every topology x workload pair through the full simulator (sequential)",
		seedBaseline["Fig4TopologySpeedup"], fig4)
	seq.Shards = 1
	rep.Benchmarks["Fig4TopologySpeedup"] = seq

	for _, n := range []int{2, 4, 8} {
		name := fmt.Sprintf("Fig4Parallel%d", n)
		fmt.Fprintf(os.Stderr, "mnbench: running %s...\n", name)
		c := compare(
			fmt.Sprintf("Fig. 4 regeneration fanned over %d workers; tables are bit-identical to the sequential run", n),
			seedBaseline["Fig4TopologySpeedup"], measure(fig4Bench(n)))
		c.Shards = n
		rep.Benchmarks[name] = c
	}

	fmt.Fprintln(os.Stderr, "mnbench: running EngineEvents...")
	events := measure(func(b *testing.B) {
		b.ReportAllocs()
		eng := sim.NewEngine()
		var fn func()
		n := 0
		fn = func() {
			n++
			if n < b.N {
				eng.Schedule(1, fn)
			}
		}
		eng.Schedule(1, fn)
		eng.Run()
	})
	rep.Benchmarks["EngineEvents"] = compare(
		"Raw event schedule+dispatch through the heap (one pending event)",
		seedBaseline["EngineEvents"], events)

	fmt.Fprintln(os.Stderr, "mnbench: running EngineEventsParallel...")
	par := measure(func(b *testing.B) {
		b.ReportAllocs()
		const shards = 4
		const la = sim.Time(10)
		p := sim.NewParallel(shards)
		for i := 0; i < shards; i++ {
			p.Connect(sim.ShardID(i), sim.ShardID((i+1)%shards), la)
		}
		hop := make([]sim.ArgHandler, shards)
		for i := 0; i < shards; i++ {
			s := p.Shard(i)
			next := (i + 1) % shards
			hop[i] = func(arg any) {
				if n := arg.(int); n > 0 {
					s.PostArg(sim.ShardID(next), s.Engine().Now()+la, hop[next], n-1)
				}
			}
		}
		quota := b.N / shards
		if quota == 0 {
			quota = 1
		}
		for i := 0; i < shards; i++ {
			p.Shard(i).Engine().AtArg(0, hop[i], quota)
		}
		p.Run(shards)
	})
	parc := compare(
		"Cross-shard post+merge+dispatch: 4 rings hopping around a 4-shard Parallel (worst case: every event crosses a boundary)",
		seedBaseline["EngineEvents"], par)
	parc.Shards = 4
	rep.Benchmarks["EngineEventsParallel"] = parc

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mnbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "mnbench:", err)
		os.Exit(1)
	}
	for name, c := range rep.Benchmarks {
		fmt.Printf("%-22s %12.1f ns/op (%+.1f%%)  %9d allocs/op (%+.1f%%)\n",
			name, c.Current.NsPerOp, c.NsDeltaPct, c.Current.AllocsPerOp, c.AllocsDelta)
	}
	fmt.Println("wrote", *out)
}
