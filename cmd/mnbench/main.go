// Command mnbench measures the simulator's hot loop and records the
// result in BENCH_engine.json, the perf baseline future changes are
// judged against. It reruns the same work as the repo's
// BenchmarkFig4TopologySpeedup (the end-to-end figure regeneration that
// funnels every subsystem through sim.Engine) plus the raw event-dispatch
// microbenchmark, and emits both next to the recorded pre-overhaul seed
// numbers so the report is self-contained:
//
//	mnbench                  # write BENCH_engine.json in the cwd
//	mnbench -out /tmp/b.json # elsewhere
//	mnbench -txns 8000       # heavier per-run trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"memnet/internal/experiments"
	"memnet/internal/sim"
)

// Measurement is one benchmark result in ns/op + allocation terms.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Comparison pairs the recorded seed baseline with a fresh measurement.
type Comparison struct {
	Description string      `json:"description"`
	Seed        Measurement `json:"seed_baseline"`
	Current     Measurement `json:"current"`
	NsDeltaPct  float64     `json:"ns_delta_pct"`
	AllocsDelta float64     `json:"allocs_delta_pct"`
}

// Report is the BENCH_engine.json schema.
type Report struct {
	Note         string                `json:"note"`
	Transactions uint64                `json:"transactions_per_run"`
	Benchmarks   map[string]Comparison `json:"benchmarks"`
}

// Seed-engine numbers, recorded on the container/heap scheduler at the
// growth seed (commit d04e491) with -benchtime 3x -benchmem on the same
// workload sizes mnbench runs. They are the "before" in every report
// this tool writes; "current" is measured fresh each invocation.
var seedBaseline = map[string]Measurement{
	"Fig4TopologySpeedup": {NsPerOp: 2608497079, AllocsPerOp: 21083629, BytesPerOp: 487119733, Iterations: 3},
	"EngineEvents":        {NsPerOp: 91.76, AllocsPerOp: 2, BytesPerOp: 48, Iterations: 13590280},
}

func measure(f func(b *testing.B)) Measurement {
	r := testing.Benchmark(f)
	return Measurement{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

func compare(desc string, seed, cur Measurement) Comparison {
	pct := func(before, after float64) float64 {
		if before == 0 {
			return 0
		}
		return (after - before) / before * 100
	}
	return Comparison{
		Description: desc,
		Seed:        seed,
		Current:     cur,
		NsDeltaPct:  pct(seed.NsPerOp, cur.NsPerOp),
		AllocsDelta: pct(float64(seed.AllocsPerOp), float64(cur.AllocsPerOp)),
	}
}

func main() {
	var (
		out  = flag.String("out", "BENCH_engine.json", "report path")
		txns = flag.Uint64("txns", 4000, "transactions per simulation run (matches bench_test default)")
	)
	flag.Parse()

	rep := Report{
		Note: "Engine hot-path baseline. Regenerate with `go run ./cmd/mnbench` " +
			"after any scheduler or hot-path change; negative deltas are improvements " +
			"over the container/heap seed engine.",
		Transactions: *txns,
		Benchmarks:   map[string]Comparison{},
	}

	fmt.Fprintln(os.Stderr, "mnbench: running Fig4TopologySpeedup...")
	fig4 := measure(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := experiments.NewRunner(experiments.Options{Transactions: *txns, Seed: 1})
			if _, err := r.Fig4(); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.Benchmarks["Fig4TopologySpeedup"] = compare(
		"End-to-end Fig. 4 regeneration: every topology x workload pair through the full simulator",
		seedBaseline["Fig4TopologySpeedup"], fig4)

	fmt.Fprintln(os.Stderr, "mnbench: running EngineEvents...")
	events := measure(func(b *testing.B) {
		b.ReportAllocs()
		eng := sim.NewEngine()
		var fn func()
		n := 0
		fn = func() {
			n++
			if n < b.N {
				eng.Schedule(1, fn)
			}
		}
		eng.Schedule(1, fn)
		eng.Run()
	})
	rep.Benchmarks["EngineEvents"] = compare(
		"Raw event schedule+dispatch through the heap (one pending event)",
		seedBaseline["EngineEvents"], events)

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mnbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "mnbench:", err)
		os.Exit(1)
	}
	for name, c := range rep.Benchmarks {
		fmt.Printf("%-22s %12.1f ns/op (%+.1f%%)  %9d allocs/op (%+.1f%%)\n",
			name, c.Current.NsPerOp, c.NsDeltaPct, c.Current.AllocsPerOp, c.AllocsDelta)
	}
	fmt.Println("wrote", *out)
}
