// Command mndocs keeps the repository's documentation generated, not
// hand-edited. Marker blocks in the docs,
//
//	<!-- mndocs:begin table:fig4 -->
//	...
//	<!-- mndocs:end table:fig4 -->
//
// are rendered from machine-readable sources: "table:<id>" blocks from
// the campaign manifest (results/experiments.json, written by mnexp),
// "provenance" blocks from the manifest's options, "flags:<cmd>"
// blocks from the flag definitions parsed out of cmd/<cmd>/main.go, and
// the "scenario-format" block from the embedded scenario JSON schema
// (internal/scenario/scenario.schema.json) — the SCENARIOS.md field
// reference can therefore never disagree with what the loader accepts.
//
// -check regenerates every block in memory and exits nonzero if the
// committed file differs (the CI docs-drift gate); -write rewrites the
// files in place. A document that names a table the manifest does not
// contain, or a begin marker without its matching end, is an error.
//
// Examples:
//
//	mndocs -check                    # CI: fail on drift
//	mndocs -write                    # re-render EXPERIMENTS.md, README.md, SCENARIOS.md
//	mndocs -write -experiments results/experiments.json DOCS.md
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"memnet/internal/experiments"
)

func main() {
	var (
		expPath = flag.String("experiments", "results/experiments.json",
			"campaign manifest (mnexp -out) that table: blocks render from")
		repo  = flag.String("repo", ".", "repository root (for flags: blocks and default doc paths)")
		check = flag.Bool("check", false, "verify docs match regenerated output; exit 1 on drift")
		write = flag.Bool("write", false, "rewrite docs in place")
	)
	flag.Parse()

	if *check == *write {
		fmt.Fprintln(os.Stderr, "mndocs: exactly one of -check or -write is required")
		os.Exit(2)
	}
	docs := flag.Args()
	if len(docs) == 0 {
		docs = []string{
			filepath.Join(*repo, "EXPERIMENTS.md"),
			filepath.Join(*repo, "README.md"),
			filepath.Join(*repo, "SCENARIOS.md"),
		}
	}

	r := &renderer{expPath: *expPath, repo: *repo}
	drift := false
	for _, doc := range docs {
		orig, err := os.ReadFile(doc)
		if err != nil {
			fatal(err)
		}
		regen, err := r.renderDoc(string(orig))
		if err != nil {
			fatal(fmt.Errorf("%s: %w", doc, err))
		}
		if regen == string(orig) {
			continue
		}
		if *write {
			if err := os.WriteFile(doc, []byte(regen), 0o644); err != nil {
				fatal(err)
			}
			fmt.Println("updated", doc)
			continue
		}
		drift = true
		fmt.Fprintf(os.Stderr, "mndocs: %s is stale:\n", doc)
		reportFirstDiff(string(orig), regen)
	}
	if drift {
		fmt.Fprintln(os.Stderr, "mndocs: docs drifted from their sources; run: go run ./cmd/mndocs -write")
		os.Exit(1)
	}
}

// renderer resolves mndocs sections; the manifest is loaded lazily so
// docs with only flags: blocks need no experiments.json.
type renderer struct {
	expPath  string
	repo     string
	manifest *experiments.RunManifest
	tables   map[string]*experiments.Table
}

const (
	beginPrefix = "<!-- mndocs:begin "
	endPrefix   = "<!-- mndocs:end "
	markerClose = " -->"
)

// renderDoc regenerates every marker block of one document.
func (r *renderer) renderDoc(src string) (string, error) {
	lines := strings.Split(src, "\n")
	var out []string
	for i := 0; i < len(lines); i++ {
		line := lines[i]
		name, ok := markerName(line, beginPrefix)
		if !ok {
			if _, stray := markerName(line, endPrefix); stray {
				return "", fmt.Errorf("line %d: mndocs:end without a begin", i+1)
			}
			out = append(out, line)
			continue
		}
		end := -1
		for j := i + 1; j < len(lines); j++ {
			if n, ok := markerName(lines[j], endPrefix); ok {
				if n != name {
					return "", fmt.Errorf("line %d: mndocs:end %q closes begin %q", j+1, n, name)
				}
				end = j
				break
			}
			if _, nested := markerName(lines[j], beginPrefix); nested {
				return "", fmt.Errorf("line %d: nested mndocs:begin inside %q", j+1, name)
			}
		}
		if end < 0 {
			return "", fmt.Errorf("line %d: mndocs:begin %q is never closed", i+1, name)
		}
		body, err := r.renderSection(name)
		if err != nil {
			return "", fmt.Errorf("section %q: %w", name, err)
		}
		out = append(out, line)
		out = append(out, strings.Split(strings.TrimSuffix(body, "\n"), "\n")...)
		out = append(out, lines[end])
		i = end
	}
	return strings.Join(out, "\n"), nil
}

// markerName extracts the section name from a marker line.
func markerName(line, prefix string) (string, bool) {
	t := strings.TrimSpace(line)
	if !strings.HasPrefix(t, prefix) || !strings.HasSuffix(t, markerClose) {
		return "", false
	}
	return strings.TrimSuffix(strings.TrimPrefix(t, prefix), markerClose), true
}

// renderSection dispatches one block name to its generator.
func (r *renderer) renderSection(name string) (string, error) {
	switch {
	case strings.HasPrefix(name, "table:"):
		return r.renderTable(strings.TrimPrefix(name, "table:"))
	case name == "provenance":
		return r.renderProvenance()
	case strings.HasPrefix(name, "flags:"):
		return r.renderFlags(strings.TrimPrefix(name, "flags:"))
	case name == "scenario-format":
		return renderScenarioFormat()
	default:
		return "", fmt.Errorf("unknown section kind")
	}
}

// load reads the campaign manifest once.
func (r *renderer) load() error {
	if r.manifest != nil {
		return nil
	}
	raw, err := os.ReadFile(r.expPath)
	if err != nil {
		return fmt.Errorf("campaign manifest (run mnexp -out first): %w", err)
	}
	m, err := experiments.DecodeRunManifest(raw)
	if err != nil {
		return err
	}
	r.manifest = m
	r.tables = make(map[string]*experiments.Table, len(m.Tables))
	for _, t := range m.Tables {
		r.tables[t.ID] = t
	}
	return nil
}

// renderTable renders one measured table as GitHub markdown.
func (r *renderer) renderTable(id string) (string, error) {
	if err := r.load(); err != nil {
		return "", err
	}
	t, ok := r.tables[id]
	if !ok {
		return "", fmt.Errorf("table %q not in %s", id, r.expPath)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Measured — %s", mdEscape(t.Title))
	if t.Unit != "" {
		fmt.Fprintf(&b, " (values in %s)", mdEscape(t.Unit))
	}
	b.WriteString(":\n\n| configuration |")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %s |", mdEscape(c))
	}
	b.WriteString("\n|---|")
	for range t.Columns {
		b.WriteString("---:|")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |", mdEscape(row.Label))
		for _, v := range row.Values {
			fmt.Fprintf(&b, " %.2f |", v)
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// renderProvenance describes the manifest every table: block came from.
func (r *renderer) renderProvenance() (string, error) {
	if err := r.load(); err != nil {
		return "", err
	}
	o := r.manifest.Options
	return fmt.Sprintf(
		"Measured tables below are rendered by `cmd/mndocs` from\n"+
			"`%s` (schema `%s`): %d tables at\n"+
			"%d transactions per configuration/workload, seed %d. Regenerate the\n"+
			"manifest with `go run ./cmd/mnexp -out results -cache results/cache`\n"+
			"and re-render this file with `go run ./cmd/mndocs -write`; CI fails\n"+
			"if the committed docs drift from either source.\n",
		r.expPath, r.manifest.Schema, len(r.manifest.Tables),
		o.Transactions, o.Seed), nil
}

// renderFlags renders the flag table of cmd/<name> parsed from its
// main.go, so the README can never advertise flags that do not exist.
func (r *renderer) renderFlags(name string) (string, error) {
	path := filepath.Join(r.repo, "cmd", name, "main.go")
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return "", err
	}
	type flagDef struct{ name, def, usage string }
	var defs []flagDef
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 3 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != "flag" {
			return true
		}
		switch sel.Sel.Name {
		case "String", "Bool", "Int", "Int64", "Uint", "Uint64", "Float64", "Duration":
		default:
			return true
		}
		fname, ok := stringLit(call.Args[0])
		if !ok {
			return true
		}
		usage, ok := stringLit(call.Args[len(call.Args)-1])
		if !ok {
			return true
		}
		defs = append(defs, flagDef{fname, exprText(fset, call.Args[1]), usage})
		return true
	})
	if len(defs) == 0 {
		return "", fmt.Errorf("no flag definitions found in %s", path)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "`%s` flags:\n\n| flag | default | description |\n|---|---|---|\n", name)
	for _, d := range defs {
		fmt.Fprintf(&b, "| `-%s` | `%s` | %s |\n", d.name, d.def, mdEscape(d.usage))
	}
	return b.String(), nil
}

// stringLit resolves an expression to its string value: a literal or a
// concatenation of literals.
func stringLit(e ast.Expr) (string, bool) {
	switch v := e.(type) {
	case *ast.BasicLit:
		if v.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(v.Value)
		return s, err == nil
	case *ast.BinaryExpr:
		if v.Op != token.ADD {
			return "", false
		}
		l, lok := stringLit(v.X)
		r, rok := stringLit(v.Y)
		return l + r, lok && rok
	}
	return "", false
}

// exprText renders a default-value expression as source text, unquoting
// plain string literals for readability.
func exprText(fset *token.FileSet, e ast.Expr) string {
	if s, ok := stringLit(e); ok {
		if s == "" {
			return `""`
		}
		return s
	}
	var b strings.Builder
	if err := printer.Fprint(&b, fset, e); err != nil {
		return "?"
	}
	return b.String()
}

// mdEscape keeps cell text from breaking the markdown table grid.
func mdEscape(s string) string {
	s = strings.ReplaceAll(s, "|", `\|`)
	return strings.ReplaceAll(s, "\n", " ")
}

// reportFirstDiff prints the first line where the committed doc and the
// regenerated doc disagree.
func reportFirstDiff(got, want string) {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	n := len(g)
	if len(w) < n {
		n = len(w)
	}
	for i := 0; i < n; i++ {
		if g[i] != w[i] {
			fmt.Fprintf(os.Stderr, "  line %d:\n    have: %s\n    want: %s\n", i+1, g[i], w[i])
			return
		}
	}
	fmt.Fprintf(os.Stderr, "  line counts differ: have %d, want %d\n", len(g), len(w))
}

// fatal prints the error and exits.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mndocs:", err)
	os.Exit(1)
}
