package main

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"memnet/internal/scenario"
)

// renderScenarioFormat renders the scenario field reference from the
// embedded JSON schema. Every table below is derived: field names,
// types, required flags, defaults, and the prose descriptions all come
// from internal/scenario/scenario.schema.json, so the reference cannot
// drift from what scenario.Decode accepts.
func renderScenarioFormat() (string, error) {
	var root map[string]any
	if err := json.Unmarshal(scenario.SchemaJSON(), &root); err != nil {
		return "", fmt.Errorf("embedded scenario schema: %w", err)
	}
	var b strings.Builder
	fmt.Fprintf(&b,
		"Format identifier `%s`. Rendered by `cmd/mndocs` from the embedded\n"+
			"schema `internal/scenario/scenario.schema.json`; regenerate with\n"+
			"`go run ./cmd/mndocs -write`. CI fails if this reference drifts\n"+
			"from the schema the loader enforces.\n",
		scenario.Schema)
	if err := renderSchemaObject(&b, "", root); err != nil {
		return "", err
	}
	return b.String(), nil
}

// renderSchemaObject emits one field table for an object schema node,
// then recurses into each nested object (sub-object, array element, or
// map value) in field order.
func renderSchemaObject(b *strings.Builder, path string, obj map[string]any) error {
	props, _ := obj["properties"].(map[string]any)
	if props == nil {
		return fmt.Errorf("schema node %q has no properties", path)
	}
	required := map[string]bool{}
	if req, ok := obj["required"].([]any); ok {
		for _, f := range req {
			if s, ok := f.(string); ok {
				required[s] = true
			}
		}
	}

	if path == "" {
		b.WriteString("\n#### Top-level document\n")
	} else {
		fmt.Fprintf(b, "\n#### `%s`\n", path)
	}
	if desc, _ := obj["description"].(string); desc != "" {
		fmt.Fprintf(b, "\n%s\n", mdEscape(desc))
	}
	b.WriteString("\n| field | type | required | default | description |\n|---|---|---|---|---|\n")

	type child struct {
		path string
		obj  map[string]any
	}
	var children []child
	for _, name := range sortedKeys(props) {
		prop, ok := props[name].(map[string]any)
		if !ok {
			return fmt.Errorf("schema field %q under %q is not an object", name, path)
		}
		fieldPath := name
		if path != "" {
			fieldPath = path + "." + name
		}
		typ, _ := prop["type"].(string)
		switch {
		case typ == "object" && prop["properties"] != nil:
			children = append(children, child{fieldPath, prop})
		case typ == "object" && prop["x-values"] != nil:
			typ = "object (map)"
			if vals, ok := prop["x-values"].(map[string]any); ok {
				children = append(children, child{fieldPath + ".<name>", vals})
			}
		case typ == "array":
			items, _ := prop["items"].(map[string]any)
			itemType, _ := items["type"].(string)
			typ = "array of " + itemType
			if itemType == "object" && items["properties"] != nil {
				children = append(children, child{fieldPath + "[]", items})
			}
		}
		req := ""
		if required[name] {
			req = "yes"
		}
		fmt.Fprintf(b, "| `%s` | %s | %s | %s | %s |\n",
			name, typ, req, defaultCell(prop), descCell(prop))
	}

	for _, c := range children {
		if err := renderSchemaObject(b, c.path, c.obj); err != nil {
			return err
		}
	}
	return nil
}

// defaultCell renders a field's schema default as a literal, or a dash.
func defaultCell(prop map[string]any) string {
	def, ok := prop["default"]
	if !ok {
		return "—"
	}
	raw, err := json.Marshal(def)
	if err != nil {
		return "—"
	}
	return "`" + string(raw) + "`"
}

// descCell joins the description with its validation constraint.
func descCell(prop map[string]any) string {
	desc, _ := prop["description"].(string)
	if c, _ := prop["x-constraint"].(string); c != "" {
		if desc != "" && !strings.HasSuffix(desc, ".") {
			desc += "."
		}
		desc = strings.TrimSpace(desc + " Constraint: " + c + ".")
	}
	return mdEscape(desc)
}

// sortedKeys returns the map's keys in sorted order, so the rendered
// reference is deterministic regardless of JSON decode order.
func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
