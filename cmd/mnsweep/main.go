// Command mnsweep runs one-dimensional parameter sensitivity sweeps and
// emits CSV, supporting the paper's "we experimented modifying this
// parameter" notes (SerDes latency, interleave granularity, buffering,
// MLP window, switch bandwidth, and trace seed).
//
// Examples:
//
//	mnsweep -param serdes -values 0,1,2,5,10 -topology tree
//	mnsweep -param interleave -values 64,256,1024 -workload BUFF
//	mnsweep -param window -values 16,32,64,128 -topology chain
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"memnet"
)

func main() {
	var (
		param    = flag.String("param", "serdes", "serdes | interleave | window | buffers | switchbw | seed")
		values   = flag.String("values", "", "comma-separated values (required)")
		topoFlag = flag.String("topology", "tree", "chain | ring | tree | skiplist | metacube | mesh")
		wlFlag   = flag.String("workload", "KMEANS", "workload name")
		dramPct  = flag.Float64("dram-pct", 100, "percent of capacity from DRAM")
		txns     = flag.Uint64("txns", 8000, "transactions per run")
		cacheDir = flag.String("cache", "", "content-addressed result cache directory; hits skip simulation")
	)
	flag.Parse()

	if *values == "" {
		fmt.Fprintln(os.Stderr, "mnsweep: -values is required")
		os.Exit(2)
	}
	topo, err := parseTopology(*topoFlag)
	check(err)

	fmt.Printf("param,value,finish_ns,mean_latency_ns,to_mem_ns,in_mem_ns,from_mem_ns,energy_uj\n")
	for _, v := range parseValues(*values) {
		sys := memnet.DefaultSystem()
		cfg := memnet.DefaultConfig()
		cfg.Topology = topo
		cfg.Workload = *wlFlag
		cfg.DRAMFraction = *dramPct / 100
		cfg.Transactions = *txns

		switch *param {
		case "serdes":
			sys.SerDesLatency = memnet.Time(v) * memnet.Nanosecond
		case "interleave":
			sys.InterleaveBytes = uint64(v)
		case "window":
			sys.MaxOutstanding = int(v)
		case "buffers":
			sys.LinkBufferPackets = int(v)
		case "switchbw":
			tn := memnet.DefaultTuning()
			tn.SwitchBandwidthBps = v * 1e9
			cfg.Tuning = &tn
		case "seed":
			cfg.Seed = uint64(v)
		default:
			fmt.Fprintf(os.Stderr, "mnsweep: unknown param %q\n", *param)
			os.Exit(2)
		}
		cfg.System = &sys

		res, _, err := memnet.RunCached(cfg, *cacheDir)
		check(err)
		fmt.Printf("%s,%d,%.1f,%.2f,%.2f,%.2f,%.2f,%.2f\n",
			*param, v,
			res.FinishTime.Nanoseconds(),
			res.MeanLatency.Nanoseconds(),
			res.Breakdown.ToMem.Nanoseconds(),
			res.Breakdown.InMem.Nanoseconds(),
			res.Breakdown.FromMem.Nanoseconds(),
			res.Energy.TotalPJ()/1e6)
	}
}

// parseValues parses the comma-separated -values list, dropping
// duplicates (first occurrence wins, with a warning) so a repeated
// value does not silently produce a repeated sweep point.
func parseValues(s string) []int64 {
	seen := make(map[int64]bool)
	var out []int64
	for _, vs := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(vs), 10, 64)
		check(err)
		if seen[v] {
			fmt.Fprintf(os.Stderr, "mnsweep: duplicate value %d in -values ignored\n", v)
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

func parseTopology(s string) (memnet.Topology, error) {
	switch strings.ToLower(s) {
	case "chain", "c":
		return memnet.Chain, nil
	case "ring", "r":
		return memnet.Ring, nil
	case "tree", "t":
		return memnet.Tree, nil
	case "skiplist", "skip-list", "sl":
		return memnet.SkipList, nil
	case "metacube", "mc":
		return memnet.MetaCube, nil
	case "mesh", "m":
		return memnet.Mesh, nil
	default:
		return 0, fmt.Errorf("unknown topology %q", s)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mnsweep:", err)
		os.Exit(1)
	}
}
