package main

import (
	"strings"
	"testing"
	"time"
)

// TestMachineFlagConflict pins the -shards flag validation: every
// per-port side-artifact flag is rejected for machine runs with a
// message naming the offending flag, while plain and manifest-writing
// machine runs pass.
func TestMachineFlagConflict(t *testing.T) {
	cases := []struct {
		name                              string
		shards, traceN                    int
		spansOut, perfOut, series, record string
		sampleIv                          time.Duration
		wantFlag                          string
	}{
		{name: "no-shards-anything-goes", shards: 0, spansOut: "s.ndjson", perfOut: "p.json", traceN: 8},
		{name: "machine-plain", shards: 4},
		{name: "machine-spans", shards: 2, spansOut: "s.ndjson", wantFlag: "-spans-out"},
		{name: "machine-perfetto", shards: 2, perfOut: "p.json", wantFlag: "-perfetto-out"},
		{name: "machine-series", shards: 2, series: "s.csv", wantFlag: "-series-out"},
		{name: "machine-sample-interval", shards: 2, sampleIv: time.Microsecond, wantFlag: "-sample-interval"},
		{name: "machine-record", shards: 2, record: "t.trace", wantFlag: "-record-trace"},
		{name: "machine-trace", shards: 2, traceN: 16, wantFlag: "-trace"},
		// Precedence: spans is reported first when several conflict.
		{name: "machine-multi", shards: 2, spansOut: "s.ndjson", traceN: 16, wantFlag: "-spans-out"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := machineFlagConflict(tc.shards, tc.spansOut, tc.perfOut, tc.series,
				tc.record, tc.traceN, tc.sampleIv)
			if tc.wantFlag == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error naming %s, got nil", tc.wantFlag)
			}
			if !strings.Contains(err.Error(), tc.wantFlag) {
				t.Fatalf("error %q does not name %s", err, tc.wantFlag)
			}
		})
	}
}
