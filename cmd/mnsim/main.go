// Command mnsim runs a single memory-network simulation and reports
// execution time, the latency decomposition, and the energy breakdown.
//
// Examples:
//
//	mnsim -topology tree -workload KMEANS
//	mnsim -topology skiplist -dram-pct 50 -placement last -arb augmented
//	mnsim -topology metacube -ports 4 -txns 50000 -v
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"memnet"
	"memnet/internal/prof"
)

func main() {
	var (
		topoFlag  = flag.String("topology", "tree", "chain | ring | tree | skiplist | metacube | mesh")
		dramPct   = flag.Float64("dram-pct", 100, "percent of capacity from DRAM (0-100)")
		placeFlag = flag.String("placement", "last", "NVM placement: last (-L) | first (-F)")
		arbFlag   = flag.String("arb", "rr", "arbitration: rr | distance | augmented")
		wlFlag    = flag.String("workload", "KMEANS", "workload name (or 'list')")
		txns      = flag.Uint64("txns", 20000, "transactions to complete")
		seed      = flag.Uint64("seed", 1, "workload seed")
		ports     = flag.Int("ports", 8, "host memory ports")
		capTB     = flag.Int("capacity-tb", 2, "total memory capacity in TB")
		verbose   = flag.Bool("v", false, "print per-component detail")
		failLink  = flag.Int("fail-link", -1, "fail the topology edge with this index (RAS experiment)")
		recordTo  = flag.String("record-trace", "", "write the generated transaction trace to this file")
		replayFrm = flag.String("replay-trace", "", "drive the run from a recorded trace file")
		traceN    = flag.Int("trace", 0, "print the last N packet lifecycle events")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	check(err)
	defer func() { check(stopProf()) }()

	if *wlFlag == "list" {
		for _, s := range memnet.Workloads() {
			fmt.Printf("%-10s reads=%.0f%%  mean gap=%v\n",
				s.Name, s.ReadFraction*100, s.MeanGap)
		}
		return
	}

	cfg := memnet.DefaultConfig()
	cfg.Topology, err = parseTopology(*topoFlag)
	check(err)
	cfg.Arbitration, err = parseArb(*arbFlag)
	check(err)
	cfg.DRAMFraction = *dramPct / 100
	if strings.HasPrefix(strings.ToLower(*placeFlag), "f") {
		cfg.Placement = memnet.NVMFirst
	}
	cfg.Workload = *wlFlag
	cfg.Transactions = *txns
	cfg.Seed = *seed

	sys := memnet.DefaultSystem()
	sys.Ports = *ports
	sys.TotalCapacity = uint64(*capTB) << 40
	cfg.System = &sys
	if *failLink >= 0 {
		cfg.FailLinks = []int{*failLink}
	}
	if *recordTo != "" {
		cfg.Record = true
	}
	cfg.TraceDepth = *traceN
	if *replayFrm != "" {
		f, err := os.Open(*replayFrm)
		check(err)
		trace, err := memnet.ReadTraceFrom(f)
		f.Close()
		check(err)
		cfg.ReplayTrace = trace
	}

	in, err := memnet.Build(cfg)
	check(err)
	res, err := in.Run()
	check(err)

	fmt.Printf("config        %s  arb=%s  workload=%s\n", res.Label, *arbFlag, res.Workload)
	fmt.Printf("finish time   %v  (%d transactions)\n", res.FinishTime, res.Transactions)
	fmt.Printf("mean latency  %v  (to-mem %v | in-mem %v | from-mem %v)\n",
		res.MeanLatency, res.Breakdown.ToMem, res.Breakdown.InMem, res.Breakdown.FromMem)
	fmt.Printf("traffic       %d reads / %d writes, %.2f mean hops\n",
		res.Reads, res.Writes, res.MeanHops)
	fmt.Printf("energy        %.1f uJ network | %.1f uJ read | %.1f uJ write\n",
		res.Energy.NetworkPJ/1e6, res.Energy.ReadPJ/1e6, res.Energy.WritePJ/1e6)
	if *recordTo != "" {
		f, err := os.Create(*recordTo)
		check(err)
		check(memnet.WriteTraceTo(f, in.Recorder.Trace()))
		check(f.Close())
		fmt.Printf("trace         wrote %d transactions to %s\n",
			len(in.Recorder.Trace()), *recordTo)
	}
	if *traceN > 0 {
		fmt.Printf("\nlast %d of %d lifecycle events:\n%s",
			len(in.Trace.Events()), in.Trace.Total(), in.Trace.String())
	}
	if *verbose {
		fmt.Printf("sim events    %d\n", res.Events)
		toF, inF, fromF := res.Breakdown.Fractions()
		fmt.Printf("latency split %.0f%% to-mem / %.0f%% in-mem / %.0f%% from-mem\n",
			toF*100, inF*100, fromF*100)
		fmt.Printf("\nper-node report (port 0's network):\n%s", in.ReportText())
	}
}

func parseTopology(s string) (memnet.Topology, error) {
	switch strings.ToLower(s) {
	case "chain", "c":
		return memnet.Chain, nil
	case "ring", "r":
		return memnet.Ring, nil
	case "tree", "t":
		return memnet.Tree, nil
	case "skiplist", "skip-list", "sl":
		return memnet.SkipList, nil
	case "metacube", "mc":
		return memnet.MetaCube, nil
	case "mesh", "m":
		return memnet.Mesh, nil
	default:
		return 0, fmt.Errorf("unknown topology %q", s)
	}
}

func parseArb(s string) (memnet.Arbitration, error) {
	switch strings.ToLower(s) {
	case "rr", "round-robin", "roundrobin":
		return memnet.RoundRobin, nil
	case "distance", "dist":
		return memnet.Distance, nil
	case "augmented", "distance-augmented", "aug":
		return memnet.DistanceAugmented, nil
	default:
		return 0, fmt.Errorf("unknown arbitration %q", s)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mnsim:", err)
		os.Exit(1)
	}
}
