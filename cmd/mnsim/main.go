// Command mnsim runs a single memory-network simulation and reports
// execution time, the latency decomposition, and the energy breakdown.
//
// Examples:
//
//	mnsim -topology tree -workload KMEANS
//	mnsim -topology skiplist -dram-pct 50 -placement last -arb augmented
//	mnsim -topology metacube -ports 4 -txns 50000 -v
//	mnsim -scenario examples/scenario/twopod.json
//	mntopo -topology skiplist -export | mnsim -scenario -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"memnet"
	"memnet/internal/obs"
	"memnet/internal/prof"
)

func main() {
	var (
		topoFlag  = flag.String("topology", "tree", "chain | ring | tree | skiplist | metacube | mesh")
		scenFlag  = flag.String("scenario", "", "run a declarative scenario file instead of -topology ('-' = stdin; see SCENARIOS.md)")
		dramPct   = flag.Float64("dram-pct", 100, "percent of capacity from DRAM (0-100)")
		placeFlag = flag.String("placement", "last", "NVM placement: last (-L) | first (-F)")
		arbFlag   = flag.String("arb", "rr", "arbitration: rr | distance | augmented")
		wlFlag    = flag.String("workload", "KMEANS", "workload name (or 'list')")
		txns      = flag.Uint64("txns", 20000, "transactions to complete")
		seed      = flag.Uint64("seed", 1, "workload seed")
		ports     = flag.Int("ports", 8, "host memory ports")
		shards    = flag.Int("shards", 0, "simulate the whole machine (all ports) on the partitioned parallel engine with N worker goroutines; results are identical for every N (0 = classic single-port run)")
		capTB     = flag.Int("capacity-tb", 2, "total memory capacity in TB")
		verbose   = flag.Bool("v", false, "print per-component detail")
		failLink  = flag.Int("fail-link", -1, "fail the topology edge with this index (RAS experiment)")
		faultSeed = flag.Uint64("fault-seed", 0, "seed for the fault-injection RNG streams (default 1)")
		linkBER   = flag.Float64("link-ber", 0, "per-bit link error rate; corrupted packets retry (e.g. 1e-6)")
		maxRetry  = flag.Int("max-retries", 0, "drop a packet after this many retries (0 = retry forever)")
		killCube  = flag.String("kill-cube", "", "kill cubes mid-run: N@T[!] (…!: router too), e.g. 4@1us,5@2us!")
		killLink  = flag.String("kill-link-at", "", "sever links mid-run: EDGE@T, e.g. 2@1us")
		failLanes = flag.String("fail-lanes-at", "", "halve link bandwidth mid-run: EDGE@T, e.g. 0@500ns")
		repCube   = flag.String("repair-cube-at", "", "repair killed cubes mid-run: N@T, e.g. 4@3us")
		repLink   = flag.String("repair-link-at", "", "repair severed links mid-run (retrains, then routes back): EDGE@T, e.g. 2@3us")
		flapLanes = flag.String("flap-lanes", "", "transient lane flaps (bandwidth halves, then rebinds): EDGE@DOWN:UP, e.g. 0@500ns:2us")
		retrainW  = flag.Duration("retrain-window", 0, "link retraining window between repair and traffic (default 200ns)")
		recordTo  = flag.String("record-trace", "", "write the generated transaction trace to this file")
		replayFrm = flag.String("replay-trace", "", "drive the run from a recorded trace file")
		traceN    = flag.Int("trace", 0, "print the last N packet lifecycle events")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")

		reportJSON = flag.Bool("report-json", false, "print the run record (per-node report, results, config) as manifest-schema JSON")
		metricsOut = flag.String("metrics-out", "", "write the run manifest JSON (config, seed, metrics, fairness) to this file; enables telemetry (with -shards: the machine manifest with per-shard engine introspection)")
		sampleIv   = flag.Duration("sample-interval", 0, "telemetry gauge-sampling interval in sim time (default 10us); enables telemetry")
		perfOut    = flag.String("perfetto-out", "", "write packet lifecycles and sampled counters as Perfetto/Chrome trace JSON (implies -trace 4096 unless set); enables telemetry")
		seriesOut  = flag.String("series-out", "", "write the sampled gauge time series as CSV; enables telemetry")
		spansOut   = flag.String("spans-out", "", "write sampled causal spans as NDJSON (memnet/spans/v1) to this file; analyze with mntrace")
		spanSample = flag.Uint64("span-sample", 0, "span sampling stride: record every Nth transaction (default 32 when -spans-out is set)")
	)
	flag.Parse()

	check(machineFlagConflict(*shards, *spansOut, *perfOut, *seriesOut, *recordTo, *traceN, *sampleIv))

	// With -report-json the manifest owns stdout; the human summary
	// moves to stderr so the JSON stays pipeable.
	status := io.Writer(os.Stdout)
	if *reportJSON {
		status = os.Stderr
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	check(err)
	defer func() { check(stopProf()) }()

	if *wlFlag == "list" {
		for _, s := range memnet.Workloads() {
			fmt.Printf("%-10s reads=%.0f%%  mean gap=%v\n",
				s.Name, s.ReadFraction*100, s.MeanGap)
		}
		return
	}

	// Explicitly-set flags win over a scenario's embedded blocks.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	cfg := memnet.DefaultConfig()
	cfg.Topology, err = parseTopology(*topoFlag)
	check(err)
	if *scenFlag != "" {
		if explicit["topology"] {
			check(fmt.Errorf("-scenario and -topology conflict: the scenario declares the graph"))
		}
		var s *memnet.Scenario
		if *scenFlag == "-" {
			s, err = memnet.LoadScenario(os.Stdin)
		} else {
			s, err = memnet.LoadScenarioFile(*scenFlag)
		}
		check(err)
		cfg.Scenario = s
		// Let the scenario's workload block drive unless -workload was
		// given; fault flags likewise override the fault block (a nil
		// cfg.Fault defers to the scenario inside memnet.Run).
		if !explicit["workload"] && s.Workload != nil {
			*wlFlag = ""
		}
	}
	cfg.Arbitration, err = parseArb(*arbFlag)
	check(err)
	cfg.DRAMFraction = *dramPct / 100
	if strings.HasPrefix(strings.ToLower(*placeFlag), "f") {
		cfg.Placement = memnet.NVMFirst
	}
	cfg.Workload = *wlFlag
	cfg.Transactions = *txns
	cfg.Seed = *seed

	sys := memnet.DefaultSystem()
	sys.Ports = *ports
	sys.TotalCapacity = uint64(*capTB) << 40
	cfg.System = &sys
	if *failLink >= 0 {
		cfg.FailLinks = []int{*failLink}
	}
	cfg.Fault, err = parseFault(*faultSeed, *linkBER, *maxRetry, *killCube, *killLink, *failLanes,
		*repCube, *repLink, *flapLanes, *retrainW)
	check(err)
	if *recordTo != "" {
		cfg.Record = true
	}
	cfg.TraceDepth = *traceN
	if *metricsOut != "" || *sampleIv > 0 || *perfOut != "" || *seriesOut != "" {
		cfg.Telemetry = &memnet.TelemetryConfig{
			Enabled:        true,
			SampleInterval: memnet.Time(sampleIv.Nanoseconds()) * memnet.Nanosecond,
		}
		if *perfOut != "" && cfg.TraceDepth == 0 {
			cfg.TraceDepth = 4096
		}
	}
	if *spansOut != "" || *spanSample > 0 {
		stride := *spanSample
		if stride == 0 {
			stride = 32
		}
		cfg.Spans = &memnet.SpanConfig{SampleStride: stride}
	}
	if *replayFrm != "" {
		f, err := os.Open(*replayFrm)
		check(err)
		trace, err := memnet.ReadTraceFrom(f)
		f.Close()
		check(err)
		cfg.ReplayTrace = trace
	}

	if *shards > 0 {
		cfg.Shards = *shards
		// The per-port sampler has no cross-port merge; the machine
		// manifest below carries the parallel engine's own introspection.
		cfg.Telemetry = nil
		mr, err := memnet.RunMachine(cfg)
		check(err)
		// The worker count is deliberately absent from the report: output
		// must be byte-identical for every -shards value (CI diffs it).
		fmt.Fprintf(status, "machine       %d ports\n", len(mr.PerPort))
		fmt.Fprintf(status, "finish time   %v  (slowest port; %d transactions machine-wide)\n",
			mr.FinishTime, mr.Transactions)
		fmt.Fprintf(status, "mean latency  %v  (transaction-weighted across ports)\n", mr.MeanLatency)
		fmt.Fprintf(status, "traffic       %d reads / %d writes, %.2f mean hops\n",
			mr.Reads, mr.Writes, mr.MeanHops)
		fmt.Fprintf(status, "energy        %.1f uJ network | %.1f uJ read | %.1f uJ write\n",
			mr.Energy.NetworkPJ/1e6, mr.Energy.ReadPJ/1e6, mr.Energy.WritePJ/1e6)
		fmt.Fprintf(status, "fairness      %.4f (Jain over per-port finish times)\n", mr.Fairness)
		if *verbose {
			fmt.Fprintf(status, "sim events    %d\n", mr.Events)
			for i, r := range mr.PerPort {
				fmt.Fprintf(status, "port %-2d       finish %v  latency %v  txns %d  events %d\n",
					i, r.FinishTime, r.MeanLatency, r.Transactions, r.Events)
			}
		}
		if *metricsOut != "" {
			m, err := memnet.MachineManifest(cfg, mr)
			check(err)
			f, err := os.Create(*metricsOut)
			check(err)
			check(m.Encode(f))
			check(f.Close())
			fmt.Fprintf(status, "manifest      wrote %s\n", *metricsOut)
		}
		return
	}

	in, err := memnet.Build(cfg)
	check(err)
	res, err := in.Run()
	check(err)

	fmt.Fprintf(status, "config        %s  arb=%s  workload=%s\n", res.Label, *arbFlag, res.Workload)
	fmt.Fprintf(status, "finish time   %v  (%d transactions)\n", res.FinishTime, res.Transactions)
	fmt.Fprintf(status, "mean latency  %v  (to-mem %v | in-mem %v | from-mem %v)\n",
		res.MeanLatency, res.Breakdown.ToMem, res.Breakdown.InMem, res.Breakdown.FromMem)
	fmt.Fprintf(status, "traffic       %d reads / %d writes, %.2f mean hops\n",
		res.Reads, res.Writes, res.MeanHops)
	fmt.Fprintf(status, "energy        %.1f uJ network | %.1f uJ read | %.1f uJ write\n",
		res.Energy.NetworkPJ/1e6, res.Energy.ReadPJ/1e6, res.Energy.WritePJ/1e6)
	if f := res.Fault; f.Any() {
		fmt.Fprintf(status, "fault         crc=%d retries=%d dropped=%d rerouted=%d bounced=%d rehomed=%d\n",
			f.CRCErrors, f.Retries, f.Dropped, f.Rerouted, f.Bounced, f.Rehomed)
		fmt.Fprintf(status, "              lane-fails=%d links-killed=%d cubes-killed=%d\n",
			f.LaneFails, f.LinksKilled, f.CubesKilled)
		if f.LinksRepaired+f.CubesRepaired+f.LaneRepairs > 0 {
			fmt.Fprintf(status, "              repaired links=%d cubes=%d lanes=%d, healed traffic %.2f Mbit\n",
				f.LinksRepaired, f.CubesRepaired, f.LaneRepairs, float64(f.HealedBits)/1e6)
		}
	}
	if *recordTo != "" {
		f, err := os.Create(*recordTo)
		check(err)
		check(memnet.WriteTraceTo(f, in.Recorder.Trace()))
		check(f.Close())
		fmt.Fprintf(status, "trace         wrote %d transactions to %s\n",
			len(in.Recorder.Trace()), *recordTo)
	}
	if *traceN > 0 {
		fmt.Fprintf(status, "\nlast %d of %d lifecycle events:\n%s",
			len(in.Trace.Events()), in.Trace.Total(), in.Trace.String())
	}
	var sampler *obs.Sampler
	if in.Telemetry != nil {
		sampler = in.Telemetry.Sampler
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		check(err)
		check(in.Manifest(res).Encode(f))
		check(f.Close())
		fmt.Fprintf(status, "manifest      wrote %s\n", *metricsOut)
	}
	if *seriesOut != "" {
		f, err := os.Create(*seriesOut)
		check(err)
		check(sampler.WriteCSV(f))
		check(f.Close())
		fmt.Fprintf(status, "series        wrote %d samples to %s\n", sampler.Samples(), *seriesOut)
	}
	if *spansOut != "" {
		f, err := os.Create(*spansOut)
		check(err)
		check(in.WriteSpans(f))
		check(f.Close())
		fmt.Fprintf(status, "spans         wrote %d spans to %s\n", len(in.Spans.Spans()), *spansOut)
	}
	if *perfOut != "" {
		f, err := os.Create(*perfOut)
		check(err)
		if in.Spans != nil {
			check(memnet.WritePerfettoSpans(f, in.Trace, sampler, in.Spans.Spans()))
		} else {
			check(memnet.WritePerfetto(f, in.Trace, sampler))
		}
		check(f.Close())
		fmt.Fprintf(status, "perfetto      wrote %s (open in https://ui.perfetto.dev)\n", *perfOut)
	}
	if *reportJSON {
		check(in.Manifest(res).Encode(os.Stdout))
	}
	if *verbose {
		fmt.Fprintf(status, "sim events    %d\n", res.Events)
		toF, inF, fromF := res.Breakdown.Fractions()
		fmt.Fprintf(status, "latency split %.0f%% to-mem / %.0f%% in-mem / %.0f%% from-mem\n",
			toF*100, inF*100, fromF*100)
		fmt.Fprintf(status, "\nper-node report (port 0's network):\n%s", in.ReportText())
	}
}

// machineFlagConflict rejects per-port side-artifact flags combined
// with -shards (a whole-machine run), mirroring core.RunMachine's own
// rejection of trace and telemetry parameters: spans, Perfetto traces,
// sampled series, recorded traces, and lifecycle traces are all
// single-network artifacts with no defined cross-port merge, so the
// combination fails fast with a pointed message instead of surfacing a
// core error after configuration.
func machineFlagConflict(shards int, spansOut, perfOut, seriesOut, recordTo string,
	traceN int, sampleIv time.Duration) error {
	if shards <= 0 {
		return nil
	}
	conflict := ""
	switch {
	case spansOut != "":
		conflict = "-spans-out"
	case perfOut != "":
		conflict = "-perfetto-out"
	case seriesOut != "":
		conflict = "-series-out"
	case sampleIv > 0:
		conflict = "-sample-interval"
	case recordTo != "":
		conflict = "-record-trace"
	case traceN > 0:
		conflict = "-trace"
	default:
		return nil
	}
	return fmt.Errorf("%s needs a single-port run: machine runs (-shards > 0) have no cross-port merge for per-port artifacts; drop -shards or %s", conflict, conflict)
}

func parseTopology(s string) (memnet.Topology, error) {
	switch strings.ToLower(s) {
	case "chain", "c":
		return memnet.Chain, nil
	case "ring", "r":
		return memnet.Ring, nil
	case "tree", "t":
		return memnet.Tree, nil
	case "skiplist", "skip-list", "sl":
		return memnet.SkipList, nil
	case "metacube", "mc":
		return memnet.MetaCube, nil
	case "mesh", "m":
		return memnet.Mesh, nil
	default:
		return 0, fmt.Errorf("unknown topology %q", s)
	}
}

func parseArb(s string) (memnet.Arbitration, error) {
	switch strings.ToLower(s) {
	case "rr", "round-robin", "roundrobin":
		return memnet.RoundRobin, nil
	case "distance", "dist":
		return memnet.Distance, nil
	case "augmented", "distance-augmented", "aug":
		return memnet.DistanceAugmented, nil
	default:
		return 0, fmt.Errorf("unknown arbitration %q", s)
	}
}

// parseFault assembles the fault configuration from the CLI knobs, or
// returns nil when none is set.
func parseFault(seed uint64, ber float64, maxRetries int, cubes, links, lanes string,
	repCubes, repLinks, flaps string, retrain time.Duration) (*memnet.FaultConfig, error) {
	fc := &memnet.FaultConfig{
		Seed: seed, LinkBER: ber, MaxRetries: maxRetries,
		RetrainWindow: memnet.Time(retrain.Nanoseconds()) * memnet.Nanosecond,
	}
	for _, spec := range splitSpecs(cubes) {
		full := strings.HasSuffix(spec, "!")
		n, at, err := parseAt(strings.TrimSuffix(spec, "!"))
		if err != nil {
			return nil, fmt.Errorf("-kill-cube %q: %w", spec, err)
		}
		fc.KillCubes = append(fc.KillCubes, memnet.CubeKill{Node: memnet.NodeID(n), At: at, Full: full})
	}
	for _, spec := range splitSpecs(links) {
		e, at, err := parseAt(spec)
		if err != nil {
			return nil, fmt.Errorf("-kill-link-at %q: %w", spec, err)
		}
		fc.KillLinks = append(fc.KillLinks, memnet.LinkKill{Edge: e, At: at})
	}
	for _, spec := range splitSpecs(lanes) {
		e, at, err := parseAt(spec)
		if err != nil {
			return nil, fmt.Errorf("-fail-lanes-at %q: %w", spec, err)
		}
		fc.LaneFails = append(fc.LaneFails, memnet.LaneFail{Edge: e, At: at})
	}
	for _, spec := range splitSpecs(repCubes) {
		n, at, err := parseAt(spec)
		if err != nil {
			return nil, fmt.Errorf("-repair-cube-at %q: %w", spec, err)
		}
		fc.RepairCubes = append(fc.RepairCubes, memnet.CubeRepair{Node: memnet.NodeID(n), At: at})
	}
	for _, spec := range splitSpecs(repLinks) {
		e, at, err := parseAt(spec)
		if err != nil {
			return nil, fmt.Errorf("-repair-link-at %q: %w", spec, err)
		}
		fc.RepairLinks = append(fc.RepairLinks, memnet.LinkRepair{Edge: e, At: at})
	}
	for _, spec := range splitSpecs(flaps) {
		e, down, up, err := parseWindow(spec)
		if err != nil {
			return nil, fmt.Errorf("-flap-lanes %q: %w", spec, err)
		}
		fc.LaneFlaps = append(fc.LaneFlaps, memnet.LaneFlap{Edge: e, Down: down, Up: up})
	}
	if !fc.Enabled() && seed == 0 {
		return nil, nil
	}
	return fc, nil
}

func splitSpecs(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseAt parses an "INDEX@DURATION" spec, e.g. "4@1us" or "2@1.5ms".
func parseAt(spec string) (int, memnet.Time, error) {
	idx, dur, ok := strings.Cut(spec, "@")
	if !ok {
		return 0, 0, fmt.Errorf("want INDEX@TIME (e.g. 4@1us)")
	}
	n, err := strconv.Atoi(idx)
	if err != nil {
		return 0, 0, err
	}
	d, err := time.ParseDuration(dur)
	if err != nil {
		return 0, 0, err
	}
	return n, memnet.Time(d.Nanoseconds()) * memnet.Nanosecond, nil
}

// parseWindow parses an "INDEX@DOWN:UP" flap spec, e.g. "0@500ns:2us".
func parseWindow(spec string) (int, memnet.Time, memnet.Time, error) {
	idx, at, ok := strings.Cut(spec, "@")
	if !ok {
		return 0, 0, 0, fmt.Errorf("want EDGE@DOWN:UP (e.g. 0@500ns:2us)")
	}
	n, err := strconv.Atoi(idx)
	if err != nil {
		return 0, 0, 0, err
	}
	downStr, upStr, ok := strings.Cut(at, ":")
	if !ok {
		return 0, 0, 0, fmt.Errorf("want EDGE@DOWN:UP (e.g. 0@500ns:2us)")
	}
	down, err := time.ParseDuration(downStr)
	if err != nil {
		return 0, 0, 0, err
	}
	up, err := time.ParseDuration(upStr)
	if err != nil {
		return 0, 0, 0, err
	}
	return n, memnet.Time(down.Nanoseconds()) * memnet.Nanosecond,
		memnet.Time(up.Nanoseconds()) * memnet.Nanosecond, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mnsim:", err)
		os.Exit(1)
	}
}
