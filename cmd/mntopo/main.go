// Command mntopo builds a memory-network topology and prints its
// structure: node/edge inventory, per-cube hop distances from the host,
// diameter statistics, and (optionally) Graphviz DOT. It also converts
// between compiled-in topologies and declarative scenario documents:
// -export emits the built graph as scenario JSON (see SCENARIOS.md),
// and -scenario summarizes a scenario file instead of -topology.
//
// Examples:
//
//	mntopo -topology skiplist -cubes 16
//	mntopo -topology metacube -dram-pct 50 -placement first -dot
//	mntopo -topology skiplist -export > skiplist16.json
//	mntopo -scenario examples/scenario/twopod.json -dot
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"memnet/internal/config"
	"memnet/internal/core"
	"memnet/internal/packet"
	"memnet/internal/scenario"
	"memnet/internal/topology"
)

// topoUsage is the -topology help text. It must stay a plain literal
// (cmd/mndocs renders flag tables from the AST) and must track
// topology.KindNames exactly; TestTopologyUsageCurrent pins both.
const topoUsage = "chain | ring | tree | skiplist | metacube | mesh"

func main() {
	var (
		topoFlag  = flag.String("topology", "skiplist", topoUsage)
		scenFlag  = flag.String("scenario", "", "summarize a declarative scenario file instead of -topology ('-' = stdin; see SCENARIOS.md)")
		export    = flag.Bool("export", false, "emit the built graph as a scenario JSON document on stdout")
		cubes     = flag.Int("cubes", 0, "build a homogeneous DRAM network of N cubes (overrides ratio)")
		dramPct   = flag.Float64("dram-pct", 100, "percent of capacity from DRAM")
		placeFlag = flag.String("placement", "last", "NVM placement: last | first")
		dot       = flag.Bool("dot", false, "emit Graphviz DOT instead of the summary")
	)
	flag.Parse()

	var (
		g    *topology.Graph
		spec *scenario.Spec
		err  error
	)
	if *scenFlag != "" {
		spec, err = loadScenario(*scenFlag)
		check(err)
		g, err = topology.BuildScenario(spec)
		check(err)
	} else {
		var kind topology.Kind
		kind, err = topology.ParseKind(*topoFlag)
		check(err)

		var techs []config.MemTech
		if *cubes > 0 {
			techs = make([]config.MemTech, *cubes)
		} else {
			sys := config.Default()
			sys.DRAMFraction = *dramPct / 100
			if strings.HasPrefix(strings.ToLower(*placeFlag), "f") {
				sys.Placement = config.NVMFirst
			}
			techs, err = core.TechOrder(&sys)
			check(err)
		}

		g, err = topology.Build(kind, techs)
		check(err)
	}

	if *export {
		name := ""
		if spec != nil {
			name = spec.Name
		}
		out, err := exportJSON(g, name)
		check(err)
		fmt.Println(out)
		return
	}

	if *dot {
		fmt.Print(toDOT(g))
		return
	}

	fmt.Printf("topology  %v  (%d cubes, %d nodes incl. host, %d links)\n",
		g.Kind, len(g.CubeIDs()), g.NumNodes(), len(g.Edges))
	fmt.Printf("diameter  %d hops worst-case host->cube, %.2f average\n",
		g.MaxHostDist(), g.MeanHostDist())
	fmt.Println()
	fmt.Println("node  kind   tech  links  dist(short)  dist(write-path)")
	for _, n := range g.Nodes {
		kind := "cube"
		tech := n.Tech.String()
		switch n.Kind {
		case topology.Host:
			kind, tech = "host", "-"
		case topology.Iface:
			kind, tech = "iface", "-"
		}
		fmt.Printf("%4d  %-5s  %-4s  %5d  %11d  %16d\n",
			n.ID, kind, tech, g.Degree(n.ID),
			g.Dist(topology.PathShort, packet.HostNode, n.ID),
			g.Dist(topology.PathLong, packet.HostNode, n.ID))
	}
	fmt.Println()
	fmt.Println("links (E=express/skip, I=interposer):")
	for _, e := range g.Edges {
		tag := " "
		if e.Express {
			tag = "E"
		}
		if e.Interposer {
			tag = "I"
		}
		fmt.Printf("  %3d -- %-3d %s\n", e.A, e.B, tag)
	}
}

// loadScenario reads a scenario document from a path or stdin ("-").
func loadScenario(path string) (*scenario.Spec, error) {
	if path == "-" {
		return scenario.Load(os.Stdin)
	}
	return scenario.LoadFile(path)
}

// exportJSON renders the graph as an indented scenario document. The
// export carries structure only — every rate, depth, and policy is the
// system-wide default — so simulating it reproduces the compiled-in
// topology bit-identically.
func exportJSON(g *topology.Graph, name string) (string, error) {
	s := topology.ExportScenario(g, name)
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// toDOT renders the graph for Graphviz.
func toDOT(g *topology.Graph) string {
	var b strings.Builder
	b.WriteString("graph mn {\n  rankdir=LR;\n")
	for _, n := range g.Nodes {
		switch {
		case n.Kind == topology.Host:
			fmt.Fprintf(&b, "  n%d [label=\"host\", shape=box];\n", n.ID)
		case n.Kind == topology.Iface:
			fmt.Fprintf(&b, "  n%d [label=\"iface%d\", shape=diamond];\n", n.ID, n.ID)
		case n.Tech == config.NVM:
			fmt.Fprintf(&b, "  n%d [label=\"NVM%d\", style=filled];\n", n.ID, n.ID)
		default:
			fmt.Fprintf(&b, "  n%d [label=\"c%d\"];\n", n.ID, n.ID)
		}
	}
	for _, e := range g.Edges {
		attr := ""
		if e.Express {
			attr = " [style=dashed]"
		}
		if e.Interposer {
			attr = " [color=gray]"
		}
		fmt.Fprintf(&b, "  n%d -- n%d%s;\n", e.A, e.B, attr)
	}
	b.WriteString("}\n")
	return b.String()
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mntopo:", err)
		os.Exit(1)
	}
}
