package main

import (
	"strings"
	"testing"

	"memnet/internal/config"
	"memnet/internal/scenario"
	"memnet/internal/topology"
)

// TestTopologyUsageCurrent pins the -topology help text to the real
// kind registry, so adding a topology without updating the flag's
// usage string (and the generated docs) fails here instead of drifting.
func TestTopologyUsageCurrent(t *testing.T) {
	if want := strings.Join(topology.KindNames(), " | "); topoUsage != want {
		t.Errorf("-topology usage %q is stale; want %q", topoUsage, want)
	}
}

// TestEveryKindBuildsAndExports walks the full registry: each name in
// the usage string must parse, build, export as a scenario document,
// and rebuild into an identical structure.
func TestEveryKindBuildsAndExports(t *testing.T) {
	for _, name := range topology.KindNames() {
		kind, err := topology.ParseKind(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g, err := topology.Build(kind, make([]config.MemTech, 16))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out, err := exportJSON(g, "")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s, err := scenario.Decode([]byte(out))
		if err != nil {
			t.Fatalf("%s export does not decode: %v", name, err)
		}
		if s.Topology != name {
			t.Errorf("%s export topology label = %q", name, s.Topology)
		}
		g2, err := topology.BuildScenario(s)
		if err != nil {
			t.Fatalf("%s export does not rebuild: %v", name, err)
		}
		if len(g2.Edges) != len(g.Edges) || g2.NumNodes() != g.NumNodes() || g2.Kind != g.Kind {
			t.Errorf("%s export rebuild mismatch: %d/%d edges, %d/%d nodes",
				name, len(g2.Edges), len(g.Edges), g2.NumNodes(), g.NumNodes())
		}
		if !strings.Contains(topoUsage, name) {
			t.Errorf("usage string omits %q", name)
		}
	}
}

// TestParseRejects keeps unknown and non-buildable labels out.
func TestParseRejects(t *testing.T) {
	for _, bad := range []string{"", "torus", "scenario"} {
		if _, err := topology.ParseKind(bad); err == nil {
			t.Errorf("ParseKind(%q) accepted", bad)
		}
	}
}
