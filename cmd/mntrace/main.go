// Command mntrace analyzes causal span files written by mnsim
// -spans-out / mnexp -spans-out (NDJSON, schema memnet/spans/v1):
// per-cause latency waterfalls, per-location blame tables, worst-N
// transaction narratives, two-run diffs, and a structural consistency
// check for CI.
//
// Examples:
//
//	mnsim -topology tree -workload KMEANS -spans-out spans.ndjson
//	mntrace spans.ndjson
//	mntrace -worst 3 spans.ndjson
//	mntrace -diff other.ndjson spans.ndjson
//	mntrace -check spans.ndjson
package main

import (
	"flag"
	"fmt"
	"os"

	"memnet/internal/span"
)

func main() {
	var (
		checkFlag = flag.Bool("check", false, "validate the span file (structure, segment ordering, attribution) and exit non-zero on any violation")
		worstN    = flag.Int("worst", 0, "print narratives for the N worst-latency transactions")
		topN      = flag.Int("top", 12, "blame-table rows to print")
		diffFile  = flag.String("diff", "", "compare against a second span file: per-cause latency deltas")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mntrace [flags] spans.ndjson\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	hdr, spans, err := readSpans(flag.Arg(0))
	fatal(err)

	if *checkFlag {
		if err := span.Check(spans); err != nil {
			fatal(err)
		}
		a := span.Analyze(spans)
		fmt.Printf("ok  %d spans, %.1f%% of end-to-end latency attributed\n",
			len(spans), a.Attribution()*100)
		return
	}

	if *diffFile != "" {
		bHdr, bSpans, err := readSpans(*diffFile)
		fatal(err)
		diffReport(os.Stdout, flag.Arg(0), hdr, spans, *diffFile, bHdr, bSpans)
		return
	}

	a := span.Analyze(spans)
	summary(os.Stdout, hdr, a)
	waterfall(os.Stdout, a)
	blame(os.Stdout, a, *topN)
	if *worstN > 0 {
		narratives(os.Stdout, spans, *worstN)
	}
}

// readSpans loads and parses one span file.
func readSpans(path string) (span.Header, []span.TxSpan, error) {
	f, err := os.Open(path)
	if err != nil {
		return span.Header{}, nil, err
	}
	defer f.Close()
	return span.Read(f)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mntrace:", err)
		os.Exit(1)
	}
}
