// Report rendering for mntrace: every function writes deterministic
// text to w, so the CLI's output for a deterministic span file is
// byte-stable (pinned by the report tests).
package main

import (
	"fmt"
	"io"
	"strings"

	"memnet/internal/sim"
	"memnet/internal/span"
)

// barWidth is the waterfall bar length at 100% share.
const barWidth = 40

// bar renders a proportional block bar for share in [0,1].
func bar(share float64) string {
	n := int(share*barWidth + 0.5)
	if n < 0 {
		n = 0
	}
	if n > barWidth {
		n = barWidth
	}
	return strings.Repeat("#", n)
}

// summary prints the run identity and attribution coverage.
func summary(w io.Writer, hdr span.Header, a *span.Analysis) {
	fmt.Fprintf(w, "spans       %d  (stride %d", a.Spans, hdr.Stride)
	if hdr.Dropped > 0 {
		fmt.Fprintf(w, ", dropped %d", hdr.Dropped)
	}
	fmt.Fprintf(w, ")")
	if hdr.Label != "" {
		fmt.Fprintf(w, "  %s", hdr.Label)
	}
	if hdr.Workload != "" {
		fmt.Fprintf(w, "  %s", hdr.Workload)
	}
	fmt.Fprintf(w, "  seed %d\n", hdr.Seed)
	fmt.Fprintf(w, "mean lat    %v  attributed %.1f%%  (+%v mean host-window wait)\n",
		sim.Time(a.MeanLatencyPs()), a.Attribution()*100, meanWindow(a))
}

// meanWindow is the mean pre-injection host-window wait per span.
func meanWindow(a *span.Analysis) sim.Time {
	if a.Spans == 0 {
		return 0
	}
	return sim.Time(a.WindowPs / int64(a.Spans))
}

// waterfall prints the per-cause latency decomposition: mean
// picoseconds per sampled transaction and share of attributed latency,
// in fixed cause order so the columns line up across runs.
func waterfall(w io.Writer, a *span.Analysis) {
	fmt.Fprintf(w, "\nwaterfall   (mean per sampled tx; %% of attributed latency)\n")
	for c := 0; c < span.NumCauses; c++ {
		cause := span.Cause(c)
		if cause == span.HostWindow {
			continue // pre-injection; reported in the summary line
		}
		total := a.ByCause[c]
		share := 0.0
		if a.AttributedPs > 0 {
			share = float64(total) / float64(a.AttributedPs)
		}
		mean := sim.Time(0)
		if a.Spans > 0 {
			mean = sim.Time(total / int64(a.Spans))
		}
		fmt.Fprintf(w, "  %-14s %10v  %5.1f%%  %s\n", cause, mean, share*100, bar(share))
	}
}

// blame prints the per-location table: where attributed time was spent,
// worst locations first, each with its dominant cause.
func blame(w io.Writer, a *span.Analysis, top int) {
	if len(a.Locs) == 0 {
		return
	}
	n := len(a.Locs)
	if top > 0 && top < n {
		n = top
	}
	fmt.Fprintf(w, "\nblame       top %d of %d locations (share of attributed latency)\n", n, len(a.Locs))
	for _, lb := range a.Locs[:n] {
		// Dominant cause at this location, by attributed time.
		best, bestV := span.Cause(0), int64(-1)
		for c, v := range lb.ByCause {
			if v > bestV {
				best, bestV = span.Cause(c), v
			}
		}
		share := 0.0
		if a.AttributedPs > 0 {
			share = float64(lb.Total) / float64(a.AttributedPs)
		}
		fmt.Fprintf(w, "  %-10s %10v  %5.1f%%  mostly %s\n",
			lb.Loc, sim.Time(lb.Total), share*100, best)
	}
}

// narratives prints the n worst-latency transactions segment by
// segment: when each wait started, how long it lasted, and where.
func narratives(w io.Writer, spans []span.TxSpan, n int) {
	worst := span.WorstN(spans, n)
	for _, sp := range worst {
		fmt.Fprintf(w, "\ntx %d  %s addr=%#x dst=%d  latency %v  (injected %v, done %v)\n",
			sp.ID, sp.Kind, sp.Addr, sp.Dst, sp.Latency(), sp.Injected, sp.Completed)
		for _, sg := range sp.Segs {
			// Offsets are relative to injection; the host-window segment
			// precedes it, so its offset renders negative.
			off := sg.At - sp.Injected
			sign := "+"
			if off < 0 {
				sign, off = "-", -off
			}
			fmt.Fprintf(w, "  %s%-12v %-14s %-10s vc%d  %v\n",
				sign, off, sg.Cause, sg.Loc, sg.VC, sg.Dur)
		}
	}
}

// diffReport compares two span files cause by cause: mean latency per
// sampled transaction in each run and the delta, so a regression shows
// up as the cause (and magnitude) that moved.
func diffReport(w io.Writer, aName string, aHdr span.Header, aSpans []span.TxSpan,
	bName string, bHdr span.Header, bSpans []span.TxSpan) {
	a, b := span.Analyze(aSpans), span.Analyze(bSpans)
	fmt.Fprintf(w, "A %s: %d spans (stride %d), mean lat %v\n",
		aName, a.Spans, aHdr.Stride, sim.Time(a.MeanLatencyPs()))
	fmt.Fprintf(w, "B %s: %d spans (stride %d), mean lat %v\n",
		bName, b.Spans, bHdr.Stride, sim.Time(b.MeanLatencyPs()))
	fmt.Fprintf(w, "\n%-14s %12s %12s %12s\n", "cause", "mean A", "mean B", "delta B-A")
	for c := 0; c < span.NumCauses; c++ {
		ma, mb := int64(0), int64(0)
		if a.Spans > 0 {
			ma = a.ByCause[c] / int64(a.Spans)
		}
		if b.Spans > 0 {
			mb = b.ByCause[c] / int64(b.Spans)
		}
		fmt.Fprintf(w, "%-14s %12v %12v %+12d\n",
			span.Cause(c), sim.Time(ma), sim.Time(mb), mb-ma)
	}
}
