// Command mnschema validates memnet run-manifest JSON files against the
// checked-in schema (internal/obs/manifest.schema.json). CI uses it as
// the smoke check that mnsim -metrics-out output stays well-formed.
//
//	mnschema manifest.json [more.json ...]
//	mnschema -print            # dump the embedded schema
package main

import (
	"flag"
	"fmt"
	"os"

	"memnet/internal/obs"
)

func main() {
	printSchema := flag.Bool("print", false, "print the embedded run-manifest schema and exit")
	flag.Parse()

	if *printSchema {
		os.Stdout.Write(obs.ManifestSchemaJSON())
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: mnschema [-print] manifest.json ...")
		os.Exit(2)
	}
	bad := false
	for _, path := range flag.Args() {
		doc, err := os.ReadFile(path)
		if err == nil {
			err = obs.ValidateManifestJSON(doc)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mnschema: %s: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if bad {
		os.Exit(1)
	}
}
