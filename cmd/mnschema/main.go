// Command mnschema validates memnet JSON artifacts against their
// checked-in schemas: run manifests (internal/obs/manifest.schema.json)
// by default, scenario documents (internal/scenario/scenario.schema.json)
// with -scenario — the latter also builds the declared graph, so a file
// that validates here will build in mnsim. CI uses both modes as the
// smoke check that mnsim -metrics-out and mntopo -export output stay
// well-formed.
//
//	mnschema manifest.json [more.json ...]
//	mnschema -scenario examples/scenario/twopod.json
//	mnschema -print            # dump the embedded run-manifest schema
//	mnschema -scenario -print  # dump the embedded scenario schema
package main

import (
	"flag"
	"fmt"
	"os"

	"memnet/internal/obs"
	"memnet/internal/scenario"
	"memnet/internal/topology"
)

func main() {
	printSchema := flag.Bool("print", false, "print the embedded schema and exit")
	scenMode := flag.Bool("scenario", false, "validate scenario documents (and build their graphs) instead of run manifests")
	flag.Parse()

	if *printSchema {
		if *scenMode {
			os.Stdout.Write(scenario.SchemaJSON())
		} else {
			os.Stdout.Write(obs.ManifestSchemaJSON())
		}
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: mnschema [-scenario] [-print] file.json ...")
		os.Exit(2)
	}
	bad := false
	for _, path := range flag.Args() {
		err := validate(path, *scenMode)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mnschema: %s: %v\n", path, err)
			bad = true
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if bad {
		os.Exit(1)
	}
}

// validate checks one file in the selected mode. Scenario documents are
// additionally built into a graph: schema-valid files can still declare
// unbuildable networks (an over-budget cube, a disconnected pod), and
// the point of the smoke check is that mnsim would accept the file.
func validate(path string, scen bool) error {
	if !scen {
		doc, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return obs.ValidateManifestJSON(doc)
	}
	s, err := scenario.LoadFile(path)
	if err != nil {
		return err
	}
	_, err = topology.BuildScenario(s)
	return err
}
