// Command mnexp regenerates the paper's tables and figures. Each
// experiment prints the same rows/series the paper reports (speedups
// over the 100% chain, latency breakdowns, energy splits, ...).
//
// Examples:
//
//	mnexp                      # run everything at publication scale
//	mnexp -exp fig4,fig7       # selected figures
//	mnexp -quick               # reduced trace length (fast)
//	mnexp -format csv -out out # write CSV files per experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"memnet/internal/experiments"
	"memnet/internal/prof"
)

func main() {
	var (
		expFlag = flag.String("exp", "all",
			"comma-separated: table1,table2,fig4,fig5,fig7,fig10,fig11,fig12,fig13,fig14,fig15,mesh,resilience or all")
		quick   = flag.Bool("quick", false, "reduced trace length for a fast pass")
		txns    = flag.Uint64("txns", 0, "override transactions per run")
		seed    = flag.Uint64("seed", 1, "workload seed")
		format  = flag.String("format", "text", "text | csv | chart")
		outDir  = flag.String("out", "", "directory for per-experiment output files (default stdout)")
		maniOut = flag.String("manifest", "", "write a campaign manifest (options, git ref, every table) as JSON to this file")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mnexp:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "mnexp:", err)
		}
	}()

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	if *txns > 0 {
		opts.Transactions = *txns
	}
	opts.Seed = *seed

	runner := experiments.NewRunner(opts)
	type exp struct {
		id string
		fn func() (*experiments.Table, error)
	}
	all := []exp{
		{"table1", func() (*experiments.Table, error) { return experiments.Table1() }},
		{"table2", nil}, // special-cased text
		{"fig4", runner.Fig4},
		{"fig5", runner.Fig5},
		{"fig7", runner.Fig7},
		{"fig10", runner.Fig10},
		{"fig11", runner.Fig11},
		{"fig12", runner.Fig12},
		{"fig13", runner.Fig13},
		{"fig14", runner.Fig14},
		{"fig15", runner.Fig15},
		{"mesh", runner.ExtMesh},
		{"resilience", runner.Resilience},
	}

	want := map[string]bool{}
	if *expFlag == "all" {
		for _, e := range all {
			want[e.id] = true
		}
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	manifest := experiments.NewRunManifest(opts)
	for _, e := range all {
		if !want[e.id] {
			continue
		}
		if e.id == "table2" {
			emit(e.id, experiments.Table2Text(), *outDir, "txt")
			continue
		}
		tab, err := e.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mnexp: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		manifest.Add(tab)
		switch *format {
		case "csv":
			emit(e.id, tab.CSV(), *outDir, "csv")
		case "chart":
			emit(e.id, tab.Chart(), *outDir, "txt")
		default:
			emit(e.id, tab.Text(), *outDir, "txt")
		}
	}
	if *maniOut != "" {
		f, err := os.Create(*maniOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mnexp:", err)
			os.Exit(1)
		}
		err = manifest.Encode(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mnexp:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *maniOut)
	}
}

// emit writes content to a file in dir (if set) or to stdout.
func emit(id, content, dir, ext string) {
	if dir == "" {
		fmt.Println(content)
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "mnexp:", err)
		os.Exit(1)
	}
	path := filepath.Join(dir, id+"."+ext)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "mnexp:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)
}
