// Command mnexp regenerates the paper's tables and figures. Each
// experiment prints the same rows/series the paper reports (speedups
// over the 100% chain, latency breakdowns, energy splits, ...).
//
// Runs can be backed by a persistent content-addressed result cache
// (-cache): every simulation already present in the cache is served
// from disk, so interrupted campaigns resume and repeated invocations
// are free. Long campaigns can be split across machines with -shard
// k/n, which executes one partition of the full grid into the cache
// and exits; -merge joins shard caches and regenerates every table
// from the combined results.
//
// Examples:
//
//	mnexp                                  # run everything at publication scale
//	mnexp -exp fig4,fig7                   # selected figures
//	mnexp -quick                           # reduced trace length (fast)
//	mnexp -format csv -out out             # write CSV files per experiment
//	mnexp -cache results/cache -out results
//	mnexp -shard 1/2 -cache shard1         # machine 1 of a 2-way campaign
//	mnexp -shard 2/2 -cache shard2         # machine 2
//	mnexp -merge shard1,shard2 -cache results/cache -out results
//	mnexp -scenario examples/scenario/twopod.json -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"memnet/internal/campaign"
	"memnet/internal/experiments"
	"memnet/internal/prof"
	"memnet/internal/scenario"
)

func main() {
	var (
		expFlag = flag.String("exp", "all",
			"comma-separated: table1,table2,fig4,fig5,fig7,fig10,fig11,fig12,fig13,fig14,fig15,mesh,resilience,chaos or all")
		scenFlag = flag.String("scenario", "", "evaluate a declarative scenario file across the workload suite instead of -exp (see SCENARIOS.md); honors -cache")
		quick    = flag.Bool("quick", false, "reduced trace length for a fast pass")
		txns     = flag.Uint64("txns", 0, "override transactions per run")
		seed     = flag.Uint64("seed", 1, "workload seed")
		format   = flag.String("format", "text", "text | csv | chart")
		outDir   = flag.String("out", "", "directory for per-experiment output files plus experiments.json (default stdout)")
		cacheDir = flag.String("cache", "", "content-addressed result cache directory; hits skip simulation")
		shardStr = flag.String("shard", "", "run partition k/n of the full campaign grid into -cache and exit (ignores -exp)")
		mergeStr = flag.String("merge", "", "comma-separated shard cache directories to merge into -cache before generating tables")
		maniOut  = flag.String("manifest", "", "also write the campaign manifest JSON to this file")
		shards   = flag.Int("shards", 0, "worker goroutines fanning out independent simulation runs; tables are identical for every value (0 = sequential)")
		spansOut = flag.String("spans-out", "", "write causal spans from every simulated run as one NDJSON file (one block per run, sorted by run key; byte-identical for every -shards value); bypasses -cache")
		spanSamp = flag.Uint64("span-sample", 0, "span sampling stride per run (default 32 when -spans-out is set)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *spansOut != "" && *shardStr != "" {
		fatal(fmt.Errorf("-spans-out is not supported with -shard (shard campaigns only fill the cache)"))
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "mnexp:", err)
		}
	}()

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	if *txns > 0 {
		opts.Transactions = *txns
	}
	opts.Seed = *seed
	if *shards > 0 {
		opts.Parallel = *shards
	}

	var store *campaign.Store
	if *cacheDir != "" {
		store, err = campaign.Open(*cacheDir)
		if err != nil {
			fatal(err)
		}
	}

	if *shardStr != "" {
		runShard(opts, store, *shardStr)
		return
	}
	if *mergeStr != "" {
		mergeShards(store, *mergeStr)
	}

	runner := experiments.NewRunner(opts)
	var counter campaign.Counter
	if store != nil {
		runner.Sim = campaign.CachedSim(store, nil, &counter)
	}
	var spanCol *spanCollector
	if *spansOut != "" {
		stride := *spanSamp
		if stride == 0 {
			stride = 32
		}
		// Span-traced runs are never cacheable, so the collector replaces
		// any cache backend outright.
		spanCol = newSpanCollector(stride)
		runner.Sim = spanCol.sim
	}

	if *scenFlag != "" {
		spec, err := scenario.LoadFile(*scenFlag)
		fatalIf(err)
		tab, err := runner.Scenario(spec)
		fatalIf(err)
		switch *format {
		case "csv":
			emit(tab.ID, tab.CSV(), *outDir, "csv")
		case "chart":
			emit(tab.ID, tab.Chart(), *outDir, "txt")
		default:
			emit(tab.ID, tab.Text(), *outDir, "txt")
		}
		if store != nil {
			fmt.Fprintf(os.Stderr, "mnexp: cache %s: %d hits, %d simulated\n",
				store.Dir(), counter.Hits(), counter.Misses())
		}
		return
	}

	type exp struct {
		id string
		fn func() (*experiments.Table, error)
	}
	all := []exp{
		{"table1", func() (*experiments.Table, error) { return experiments.Table1() }},
		{"table2", nil}, // special-cased text
	}
	for _, f := range runner.Figures() {
		all = append(all, exp{f.ID, f.Fn})
	}

	want := map[string]bool{}
	if *expFlag == "all" {
		for _, e := range all {
			want[e.id] = true
		}
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	manifest := experiments.NewRunManifest(opts)
	for _, e := range all {
		if !want[e.id] {
			continue
		}
		if e.id == "table2" {
			emit(e.id, experiments.Table2Text(), *outDir, "txt")
			continue
		}
		tab, err := e.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mnexp: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		manifest.Add(tab)
		switch *format {
		case "csv":
			emit(e.id, tab.CSV(), *outDir, "csv")
		case "chart":
			emit(e.id, tab.Chart(), *outDir, "txt")
		default:
			emit(e.id, tab.Text(), *outDir, "txt")
		}
	}
	if store != nil {
		fmt.Fprintf(os.Stderr, "mnexp: cache %s: %d hits, %d simulated\n",
			store.Dir(), counter.Hits(), counter.Misses())
	}
	if spanCol != nil {
		if err := spanCol.writeFile(*spansOut); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *spansOut)
	}

	manifestPaths := []string{}
	if *outDir != "" {
		manifestPaths = append(manifestPaths, filepath.Join(*outDir, "experiments.json"))
	}
	if *maniOut != "" {
		manifestPaths = append(manifestPaths, *maniOut)
	}
	for _, path := range manifestPaths {
		if err := writeManifest(manifest, path); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
}

// runShard executes one campaign partition into the cache and exits.
func runShard(opts experiments.Options, store *campaign.Store, shardStr string) {
	if store == nil {
		fatal(fmt.Errorf("-shard requires -cache"))
	}
	shard, err := campaign.ParseShard(shardStr)
	if err != nil {
		fatal(err)
	}
	stats, err := campaign.RunShard(opts, store, shard, func(p campaign.Progress) {
		verb := "ran"
		if p.Hit {
			verb = "hit"
		}
		fmt.Fprintf(os.Stderr, "mnexp: shard %s [%d/%d] %s %s/%s\n",
			shard, p.Done, p.Total, verb, p.Key.Label, p.Key.Workload)
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("shard %s: %d of %d grid units; %d cached, %d simulated\n",
		shard, stats.ShardSize, stats.GridSize, stats.Hits, stats.Simulated)
}

// mergeShards joins the listed shard caches into the main cache.
func mergeShards(store *campaign.Store, mergeStr string) {
	if store == nil {
		fatal(fmt.Errorf("-merge requires -cache"))
	}
	for _, dir := range strings.Split(mergeStr, ",") {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		src, err := campaign.Open(dir)
		if err != nil {
			fatal(err)
		}
		added, skipped, err := store.Merge(src)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mnexp: merged %s: %d added, %d skipped\n", dir, added, skipped)
	}
}

// writeManifest writes the campaign manifest JSON to path.
func writeManifest(m *experiments.RunManifest, path string) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = m.Encode(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// emit writes content to a file in dir (if set) or to stdout.
func emit(id, content, dir, ext string) {
	if dir == "" {
		fmt.Println(content)
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	path := filepath.Join(dir, id+"."+ext)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", path)
}

// fatal prints the error and exits.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mnexp:", err)
	os.Exit(1)
}

// fatalIf is fatal for non-nil errors.
func fatalIf(err error) {
	if err != nil {
		fatal(err)
	}
}
