package main

import (
	"bytes"
	"fmt"
	"os"
	"sort"
	"sync"

	"memnet/internal/core"
	"memnet/internal/span"
)

// spanCollector is a SimFunc backend that arms causal span tracing on
// every simulation it executes and retains each run's NDJSON block,
// keyed by the run's identifying parameters. Warm calls the backend
// from worker goroutines, so the block map is mutex-guarded; the final
// file is written sorted by key, so its bytes do not depend on worker
// count or completion order.
type spanCollector struct {
	stride uint64

	mu     sync.Mutex
	blocks map[string][]byte
}

func newSpanCollector(stride uint64) *spanCollector {
	return &spanCollector{stride: stride, blocks: make(map[string][]byte)}
}

// sim is the experiments.SimFunc: run with spans armed, capture the
// run's span block, return the Results untouched (span tracing leaves
// them bit-identical).
func (sc *spanCollector) sim(p core.Params) (core.Results, error) {
	p.Spans = &span.Config{SampleStride: sc.stride}
	inst, err := core.Build(p)
	if err != nil {
		return core.Results{}, err
	}
	res, err := inst.Run()
	if err != nil {
		return res, err
	}
	var buf bytes.Buffer
	if err := inst.WriteSpans(&buf); err != nil {
		return res, err
	}
	key := fmt.Sprintf("%s|%s|ports%d|cap%d|seed%d|txns%d",
		p.Label(), p.Workload.Name, p.Sys.Ports, p.Sys.TotalCapacity, p.Seed, p.Transactions)
	sc.mu.Lock()
	sc.blocks[key] = buf.Bytes()
	sc.mu.Unlock()
	return res, nil
}

// writeFile concatenates every retained block in sorted key order.
// span.Read accepts the multi-block result (each block opens with its
// own header line).
func (sc *spanCollector) writeFile(path string) error {
	sc.mu.Lock()
	keys := make([]string, 0, len(sc.blocks))
	for k := range sc.blocks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out bytes.Buffer
	for _, k := range keys {
		out.Write(sc.blocks[k])
	}
	sc.mu.Unlock()
	return os.WriteFile(path, out.Bytes(), 0o644)
}
