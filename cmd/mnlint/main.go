// Command mnlint runs memnet's determinism and packet-ownership linter
// suite (see internal/lint) over Go packages.
//
// Standalone (the form CI uses):
//
//	go run ./cmd/mnlint ./...
//	go run ./cmd/mnlint -c detmap,poolcheck ./internal/migrate
//
// As a go vet tool (diagnostics integrate with go vet's output):
//
//	go build -o /tmp/mnlint ./cmd/mnlint
//	go vet -vettool=/tmp/mnlint ./...
//
// Exit status is 0 when no findings are reported, 1 on findings, 2 on
// operational errors (unloadable packages, type errors).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"memnet/internal/lint"
	"memnet/internal/lint/analysis"
	"memnet/internal/lint/loader"
)

func main() {
	// The go vet driver probes its tool before use: `-V=full` must
	// print an identity line, `-flags` the supported flag set, and a
	// lone *.cfg argument requests a unit-checker run over one package.
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V=full":
			fmt.Printf("%s version mnlint-1.0\n", filepath.Base(os.Args[0]))
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(vetUnit(os.Args[1]))
		}
	}

	var (
		checks = flag.String("c", "", "comma-separated analyzer subset (default: all)")
		list   = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mnlint [-c analyzers] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *checks != "" {
		names := strings.Split(*checks, ",")
		analyzers = lint.ByName(names...)
		if len(analyzers) != len(names) {
			fmt.Fprintf(os.Stderr, "mnlint: unknown analyzer in -c %q\n", *checks)
			os.Exit(2)
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	l := loader.New()
	units, err := l.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mnlint: %v\n", err)
		os.Exit(2)
	}
	exit := 0
	for _, u := range units {
		findings, err := analysis.RunAnalyzers(u, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mnlint: %v\n", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(rel(f))
			exit = 1
		}
	}
	os.Exit(exit)
}

// rel shortens absolute file positions to be relative to the working
// directory, keeping CI logs and editors happy.
func rel(f analysis.Finding) string {
	wd, err := os.Getwd()
	if err != nil {
		return f.String()
	}
	if r, err := filepath.Rel(wd, f.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
		f.Pos.Filename = r
	}
	return f.String()
}

// vetConfig is the subset of the go vet unit-checker configuration file
// mnlint consumes. The driver hands the tool one package's worth of
// files; imports are re-type-checked from source (mnlint ignores the
// export data the config points at, trading speed for zero
// dependencies).
type vetConfig struct {
	ID         string
	Dir        string
	ImportPath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
	Succeed    bool `json:"SucceedOnTypecheckFailure"`
}

// vetUnit implements one `go vet -vettool` invocation; it returns the
// process exit code (0 clean, 2 findings or failure, matching the
// x/tools unitchecker convention go vet expects).
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mnlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "mnlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The driver requires the facts file to exist even though mnlint's
	// analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("mnlint\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "mnlint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		return 0
	}
	// Only lint first-party memnet packages; go vet also feeds the tool
	// every dependency for fact extraction.
	if cfg.ImportPath != "memnet" && !strings.HasPrefix(cfg.ImportPath, "memnet/") {
		return 0
	}
	l := loader.New()
	u, err := l.LoadFiles(cfg.ImportPath, cfg.GoFiles)
	if err != nil {
		if cfg.Succeed {
			return 0
		}
		fmt.Fprintf(os.Stderr, "mnlint: %v\n", err)
		return 1
	}
	findings, err := analysis.RunAnalyzers(u, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "mnlint: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
