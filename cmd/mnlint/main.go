// Command mnlint runs memnet's determinism and packet-ownership linter
// suite (see internal/lint) over Go packages.
//
// Standalone (the form CI uses):
//
//	go run ./cmd/mnlint ./...
//	go run ./cmd/mnlint -c detmap,poolcheck ./internal/migrate
//
// As a go vet tool (diagnostics integrate with go vet's output):
//
//	go build -o /tmp/mnlint ./cmd/mnlint
//	go vet -vettool=/tmp/mnlint ./...
//
// Output formats (-format) are text (default), json, and sarif; a
// checked-in baseline (-baseline, regenerated with -write-baseline)
// suppresses known findings by (analyzer, file, message) so new
// violations fail CI without a flag day on old ones. -cpuprofile
// writes a pprof profile of the whole run.
//
// Exit status is 0 when no findings are reported, 1 on findings, 2 on
// operational errors (unloadable packages, type errors).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"memnet/internal/lint"
	"memnet/internal/lint/analysis"
	"memnet/internal/lint/loader"
	"memnet/internal/lint/report"
	"memnet/internal/prof"
)

func main() {
	// The go vet driver probes its tool before use: `-V=full` must
	// print an identity line, `-flags` the supported flag set, and a
	// lone *.cfg argument requests a unit-checker run over one package.
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V=full":
			fmt.Printf("%s version mnlint-1.0\n", filepath.Base(os.Args[0]))
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(vetUnit(os.Args[1]))
		}
	}
	// Standalone mode runs behind an exit-code return so deferred
	// cleanups (the CPU profile writer) execute before os.Exit.
	os.Exit(realMain())
}

func realMain() int {
	var (
		checks        = flag.String("c", "", "comma-separated analyzer subset (default: all)")
		list          = flag.Bool("list", false, "list analyzers and exit")
		format        = flag.String("format", "text", "output format: text, json, or sarif")
		baselinePath  = flag.String("baseline", "", "suppress findings recorded in this baseline file")
		writeBaseline = flag.String("write-baseline", "", "write current findings to this baseline file and exit 0")
		cpuprofile    = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: mnlint [-c analyzers] [-format text|json|sarif] [-baseline file] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *checks != "" {
		names := strings.Split(*checks, ",")
		analyzers = lint.ByName(names...)
		if len(analyzers) != len(names) {
			fmt.Fprintf(os.Stderr, "mnlint: unknown analyzer in -c %q\n", *checks)
			return 2
		}
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "mnlint: unknown -format %q (want text, json, or sarif)\n", *format)
		return 2
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *cpuprofile != "" {
		stop, err := prof.Start(*cpuprofile, "")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mnlint: %v\n", err)
			return 2
		}
		defer stop()
	}

	l := loader.New()
	units, err := l.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mnlint: %v\n", err)
		return 2
	}
	// Collect everything, then order globally: the loader yields
	// packages in dependency order, which is not reporting order.
	var all []analysis.Finding
	facts := analysis.NewFacts()
	for _, u := range units {
		findings, err := analysis.RunAnalyzers(u, analyzers, facts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mnlint: %v\n", err)
			return 2
		}
		all = append(all, findings...)
	}
	if wd, err := os.Getwd(); err == nil {
		report.Relativize(all, wd)
	}
	report.Sort(all)

	if *writeBaseline != "" {
		if err := report.WriteBaselineFile(*writeBaseline, report.NewBaseline(all)); err != nil {
			fmt.Fprintf(os.Stderr, "mnlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "mnlint: wrote %d finding(s) to %s\n", len(all), *writeBaseline)
		return 0
	}
	if *baselinePath != "" {
		b, err := report.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mnlint: %v\n", err)
			return 2
		}
		all = b.Filter(all)
	}

	var emitErr error
	switch *format {
	case "text":
		emitErr = report.WriteText(os.Stdout, all)
	case "json":
		emitErr = report.WriteJSON(os.Stdout, all)
	case "sarif":
		emitErr = report.WriteSARIF(os.Stdout, all, analyzers)
	}
	if emitErr != nil {
		fmt.Fprintf(os.Stderr, "mnlint: %v\n", emitErr)
		return 2
	}
	if len(all) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the subset of the go vet unit-checker configuration file
// mnlint consumes. The driver hands the tool one package's worth of
// files; imports are re-type-checked from source (mnlint ignores the
// export data the config points at, trading speed for zero
// dependencies).
type vetConfig struct {
	ID         string
	Dir        string
	ImportPath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
	Succeed    bool `json:"SucceedOnTypecheckFailure"`
}

// vetUnit implements one `go vet -vettool` invocation; it returns the
// process exit code (0 clean, 2 findings or failure, matching the
// x/tools unitchecker convention go vet expects).
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mnlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "mnlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The driver requires the facts file to exist. mnlint's dataflow
	// analyzers exchange facts through their own in-process store (each
	// vet unit starts fresh, so cross-package summaries degrade to the
	// analyzers' optimistic defaults); the vetx file is only a marker.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("mnlint\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "mnlint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		return 0
	}
	// Only lint first-party memnet packages; go vet also feeds the tool
	// every dependency for fact extraction.
	if cfg.ImportPath != "memnet" && !strings.HasPrefix(cfg.ImportPath, "memnet/") {
		return 0
	}
	l := loader.New()
	u, err := l.LoadFiles(cfg.ImportPath, cfg.GoFiles)
	if err != nil {
		if cfg.Succeed {
			return 0
		}
		fmt.Fprintf(os.Stderr, "mnlint: %v\n", err)
		return 1
	}
	findings, err := analysis.RunAnalyzers(u, lint.Analyzers(), nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mnlint: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
