package memnet

import (
	"testing"
)

func TestRunDefault(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Transactions = 2000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != 2000 {
		t.Fatalf("completed %d", res.Transactions)
	}
	if res.Label != "100%-T" {
		t.Fatalf("label %q", res.Label)
	}
	if res.FinishTime <= 0 || res.MeanLatency <= 0 {
		t.Fatal("timings not populated")
	}
	if res.Energy.TotalPJ() <= 0 {
		t.Fatal("energy not populated")
	}
}

func TestBuildExposesInstance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Transactions = 500
	in, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if in.Graph.NumNodes() != 17 { // host + 16 cubes
		t.Fatalf("nodes = %d", in.Graph.NumNodes())
	}
	res, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != 500 {
		t.Fatal("instance run incomplete")
	}
}

func TestCustomWorkload(t *testing.T) {
	spec := WorkloadSpec{
		Name: "custom", ReadFraction: 1.0,
		MeanGap: 10 * Nanosecond, SeqProb: 0.9, SeqStride: 64,
	}
	cfg := DefaultConfig()
	cfg.Custom = &spec
	cfg.Transactions = 1000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Writes != 0 {
		t.Fatalf("all-read workload produced %d writes", res.Writes)
	}
}

func TestConfigErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload = "MISSING"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown workload must fail")
	}
	cfg = Config{Topology: Tree, DRAMFraction: 1}
	if _, err := Run(cfg); err == nil {
		t.Fatal("missing workload must fail")
	}
}

func TestSpeedupHelper(t *testing.T) {
	a := DefaultConfig()
	a.Transactions = 1500
	b := a
	b.Topology = Chain
	s, err := Speedup(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Fatalf("tree over chain speedup %.2f, want positive", s)
	}
}

func TestWorkloadsExposed(t *testing.T) {
	if len(Workloads()) != 8 {
		t.Fatal("suite size")
	}
	if _, err := WorkloadByName("NW"); err != nil {
		t.Fatal(err)
	}
}

func TestSystemOverride(t *testing.T) {
	sys := DefaultSystem()
	sys.Ports = 4
	cfg := DefaultConfig()
	cfg.System = &sys
	cfg.Transactions = 1000
	in, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 ports -> 512GB/port -> 32 cubes.
	if got := len(in.Graph.CubeIDs()); got != 32 {
		t.Fatalf("cubes = %d, want 32", got)
	}
}

func TestRecordAndReplay(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Transactions = 800
	cfg.Record = true
	in, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	trace := in.Recorder.Trace()
	if len(trace) < 800 {
		t.Fatalf("recorded %d", len(trace))
	}

	// Replaying the captured trace reproduces the run exactly.
	replay := DefaultConfig()
	replay.Transactions = 800
	replay.Workload = ""
	replay.ReplayTrace = trace
	res, err := Run(replay)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinishTime != orig.FinishTime || res.Reads != orig.Reads {
		t.Fatalf("replay diverged: %v/%d vs %v/%d",
			res.FinishTime, res.Reads, orig.FinishTime, orig.Reads)
	}
}

func TestAblationTunings(t *testing.T) {
	base := DefaultConfig()
	base.Transactions = 1500
	r0, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	// Ideal switch must be at least as fast as the contended one.
	tn := DefaultTuning()
	tn.SwitchBandwidthBps = 0
	fast := base
	fast.Tuning = &tn
	r1, err := Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	if r1.FinishTime > r0.FinishTime {
		t.Fatalf("ideal switch slower: %v > %v", r1.FinishTime, r0.FinishTime)
	}
	// A tiny window must slow completion substantially.
	sys := DefaultSystem()
	sys.MaxOutstanding = 8
	slow := base
	slow.System = &sys
	r2, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	if float64(r2.FinishTime) < float64(r0.FinishTime)*1.3 {
		t.Fatalf("window=8 barely slowed the run: %v vs %v", r2.FinishTime, r0.FinishTime)
	}
}

func TestFailLinksPublic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = Ring
	cfg.Transactions = 800
	cfg.FailLinks = []int{2}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != 800 {
		t.Fatal("degraded ring did not complete")
	}
	cfg.Topology = Chain
	if _, err := Run(cfg); err == nil {
		t.Fatal("chain cut must fail")
	}
}

func TestMigrationPublic(t *testing.T) {
	mc := DefaultMigration()
	cfg := DefaultConfig()
	cfg.DRAMFraction = 0.5
	cfg.Workload = "HOTSPOT"
	cfg.Transactions = 2000
	cfg.Migration = &mc
	in, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if in.Migrator == nil {
		t.Fatal("migrator not exposed")
	}
	if in.Migrator.Stats().Epochs == 0 {
		t.Fatal("migration epochs never ran")
	}
}

func TestRunSystem(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Transactions = 1200
	sr, err := RunSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.PerPort) != 8 {
		t.Fatalf("ports = %d", len(sr.PerPort))
	}
	// The system finishes with its slowest port.
	for _, r := range sr.PerPort {
		if r.FinishTime > sr.FinishTime {
			t.Fatal("finish not the max")
		}
	}
	// Ports are statistically identical: the paper's disjoint-slice
	// argument predicts a small finish-time spread.
	if sr.Spread > 0.15 {
		t.Fatalf("port spread %.2f too large for symmetric ports", sr.Spread)
	}
	if sr.MeanLatency <= 0 || sr.TotalEnergyPJ <= 0 {
		t.Fatal("aggregates not populated")
	}
	// Energy is roughly 8x a single port's.
	single := sr.PerPort[0].Energy.TotalPJ()
	if sr.TotalEnergyPJ < 6*single || sr.TotalEnergyPJ > 10*single {
		t.Fatalf("system energy %.0f vs single %.0f", sr.TotalEnergyPJ, single)
	}
}
